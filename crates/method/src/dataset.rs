//! The immutable dataset of data graphs.

use gc_graph::invariants::GraphSummary;
use gc_graph::{BitSet, Graph, GraphId};
use gc_iso::{GraphProfile, ProfileRef};

/// Flat side arrays of per-graph verification precomputation: packed
/// neighbour signatures and pattern-role search orders for every dataset
/// graph, concatenated with one shared offset table (both are per-vertex).
///
/// Built once at load time so the verification hot path pays zero
/// per-candidate setup — the engines receive borrowed [`ProfileRef`] slices
/// straight out of these arrays.
#[derive(Debug)]
pub struct DatasetProfiles {
    /// `off[i]..off[i + 1]` is graph `i`'s vertex range in `sig` / `order`.
    off: Vec<usize>,
    sig: Vec<u64>,
    order: Vec<u32>,
}

impl DatasetProfiles {
    /// Approximate heap bytes of the side arrays.
    pub fn memory_bytes(&self) -> usize {
        self.off.len() * std::mem::size_of::<usize>() + self.sig.len() * 8 + self.order.len() * 4
    }
}

/// A loaded collection of data graphs with precomputed per-graph summaries
/// and verification profiles.
///
/// The dataset is immutable for the lifetime of a cache instance (the paper's
/// Dataset Graphs component); graph ids are dense `0..len`.
#[derive(Debug)]
pub struct Dataset {
    graphs: Vec<Graph>,
    summaries: Vec<GraphSummary>,
    label_freq: Vec<u32>,
    profiles: DatasetProfiles,
}

impl Dataset {
    /// Wrap a vector of graphs, precomputing summaries, label frequencies
    /// and per-graph verification profiles.
    pub fn new(graphs: Vec<Graph>) -> Self {
        let mut summaries = Vec::with_capacity(graphs.len());
        let mut profiles = DatasetProfiles {
            off: Vec::with_capacity(graphs.len() + 1),
            sig: Vec::new(),
            order: Vec::new(),
        };
        profiles.off.push(0);
        for g in &graphs {
            // One full profile per graph: the graph serves as verification
            // *target* for subgraph queries and as *pattern* (hence the
            // search order) for supergraph queries.
            let p = GraphProfile::new(g, None);
            summaries.push(p.summary);
            profiles.sig.extend_from_slice(&p.sig);
            profiles.order.extend_from_slice(&p.order);
            profiles.off.push(profiles.sig.len());
        }
        let max_label = graphs
            .iter()
            .filter_map(|g| g.max_label())
            .map(|l| l.0)
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut label_freq = vec![0u32; max_label];
        for g in &graphs {
            for v in g.vertices() {
                label_freq[g.label(v).0 as usize] += 1;
            }
        }
        Dataset { graphs, summaries, label_freq, profiles }
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` iff the dataset holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Access a graph by id.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn graph(&self, id: GraphId) -> &Graph {
        &self.graphs[id as usize]
    }

    /// Precomputed invariants summary of graph `id`.
    pub fn summary(&self, id: GraphId) -> &GraphSummary {
        &self.summaries[id as usize]
    }

    /// Precomputed verification profile of graph `id` (borrowed slices of
    /// the flat [`DatasetProfiles`] side arrays — no per-call work).
    pub fn profile(&self, id: GraphId) -> ProfileRef<'_> {
        let i = id as usize;
        let range = self.profiles.off[i]..self.profiles.off[i + 1];
        ProfileRef {
            summary: &self.summaries[i],
            sig: &self.profiles.sig[range.clone()],
            order: &self.profiles.order[range],
        }
    }

    /// The flat profile side arrays (for memory accounting).
    pub fn profiles(&self) -> &DatasetProfiles {
        &self.profiles
    }

    /// All graphs in id order.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Order-sensitive content fingerprint of the whole dataset: a hash of
    /// the dataset size and every graph's WL fingerprint, in id order.
    /// Persistence snapshots record it so cached answer sets are never
    /// restored over a different (or reordered) dataset.
    pub fn content_fingerprint(&self) -> u64 {
        gc_graph::hash::hash_seq(
            std::iter::once(self.graphs.len() as u64)
                .chain(self.graphs.iter().map(gc_graph::hash::fingerprint)),
        )
    }

    /// Global label frequency across the dataset (index = label value);
    /// steers matcher search orders toward rare labels.
    pub fn label_freq(&self) -> &[u32] {
        &self.label_freq
    }

    /// A fresh full candidate bitset over this dataset's universe.
    pub fn all_graphs(&self) -> BitSet {
        BitSet::full(self.len())
    }

    /// A fresh empty bitset over this dataset's universe.
    pub fn empty_set(&self) -> BitSet {
        BitSet::new(self.len())
    }

    /// Total approximate memory of the raw graphs.
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(Graph::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn ds() -> Dataset {
        Dataset::new(vec![
            graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
            graph_from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap(),
        ])
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.graph(0).vertex_count(), 2);
        assert_eq!(d.summary(1).n, 3);
        assert_eq!(d.label_freq(), &[1, 3, 1]);
    }

    #[test]
    fn profiles_match_per_graph_computation() {
        let d = ds();
        assert!(d.profiles().memory_bytes() > 0);
        for id in 0..d.len() as u32 {
            let fresh = GraphProfile::new(d.graph(id), None);
            let p = d.profile(id);
            assert_eq!(p.summary, &fresh.summary, "graph {id}");
            assert_eq!(p.sig, &fresh.sig[..], "graph {id}");
            assert_eq!(p.order, &fresh.order[..], "graph {id}");
        }
    }

    #[test]
    fn universe_sets() {
        let d = ds();
        assert_eq!(d.all_graphs().count(), 2);
        assert_eq!(d.empty_set().count(), 0);
        assert_eq!(d.all_graphs().universe(), 2);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.label_freq().len(), 0);
        assert_eq!(d.all_graphs().count(), 0);
    }
}
