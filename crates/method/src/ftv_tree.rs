//! Filter-then-verify over tree features.

use crate::{Dataset, Method, QueryKind};
use gc_graph::{BitSet, Graph};
use gc_index::{TreeConfig, TreeIndex, TreeScratch};
use std::cell::RefCell;

thread_local! {
    /// Per-thread tree probe scratch: `Method::filter` is `&self` (shared
    /// across worker threads), so the reusable subtree-enumeration and
    /// probe buffers live thread-locally — the query's tree features are
    /// enumerated exactly once per filter call and nothing but the output
    /// bitset is allocated per query.
    static FILTER_SCRATCH: RefCell<TreeScratch> = RefCell::new(TreeScratch::new());
}

/// FTV method indexing *tree* features instead of paths — the alternative
/// feature family the paper names ("a path, tree or subgraph"). Trees of a
/// given size filter harder than paths of the same size but cost more to
/// enumerate and store; `exp2_speedup_overhead` puts both on the same
/// speedup-versus-space axis.
#[derive(Debug)]
pub struct FtvTreeMethod {
    /// The posting directory behind [`TreeIndex`] is dynamic
    /// (insert/remove with tombstoned lazy compaction), so this method
    /// tracks dataset mutations live; the lock serialises the rare
    /// maintenance writes against concurrent `filter` reads.
    index: std::sync::RwLock<TreeIndex>,
    max_edges: usize,
}

impl FtvTreeMethod {
    /// Build the tree index over `dataset` with subtree size `max_edges`.
    pub fn build(dataset: &Dataset, max_edges: usize) -> Self {
        let index = TreeIndex::build(dataset.graphs(), TreeConfig::with_max_edges(max_edges));
        FtvTreeMethod { index: std::sync::RwLock::new(index), max_edges }
    }

    /// The feature size (subtree edges).
    pub fn feature_size(&self) -> usize {
        self.max_edges
    }

    /// Read access to the underlying index.
    pub fn index(&self) -> std::sync::RwLockReadGuard<'_, TreeIndex> {
        self.index.read().expect("tree index lock poisoned")
    }
}

impl Method for FtvTreeMethod {
    fn name(&self) -> String {
        format!("ftv-tree(T={})", self.max_edges)
    }

    fn filter(&self, _dataset: &Dataset, query: &Graph, kind: QueryKind) -> BitSet {
        FILTER_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let index = self.index();
            let mut out = BitSet::new(index.dataset_size());
            match kind {
                QueryKind::Subgraph => index.candidates_into(query, scratch, &mut out),
                QueryKind::Supergraph => index.super_candidates_into(query, scratch, &mut out),
            }
            out
        })
    }

    fn index_memory_bytes(&self) -> usize {
        self.index().memory_bytes()
    }

    fn on_insert_graph(&self, dataset: &Dataset, gid: gc_graph::GraphId) -> bool {
        self.index.write().expect("tree index lock poisoned").insert_graph(gid, dataset.graph(gid));
        true
    }

    fn on_remove_graph(&self, _dataset: &Dataset, gid: gc_graph::GraphId) {
        self.index.write().expect("tree index lock poisoned").remove_graph(gid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_base, Engine, FtvMethod, SiMethod};
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn ds() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
            g(&[0, 1], &[(0, 1)]),
        ])
    }

    #[test]
    fn answers_match_other_methods() {
        let d = ds();
        let tree = FtvTreeMethod::build(&d, 3);
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 0, 0], &[(0, 1), (0, 2)]),
            g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (1, 3)]),
        ];
        for q in &queries {
            for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
                let a = execute_base(&d, &tree, Engine::Vf2, q, kind);
                let b = execute_base(&d, &SiMethod, Engine::Vf2, q, kind);
                assert_eq!(a.answer, b.answer, "kind {kind}");
            }
        }
    }

    #[test]
    fn tree_filters_harder_than_paths_on_branching_queries() {
        let d = ds();
        let tree = FtvTreeMethod::build(&d, 3);
        let paths = FtvMethod::build(&d, 3);
        // A 3-star: path features of a star are short, tree features nail it.
        let q = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let ct = tree.filter(&d, &q, QueryKind::Subgraph);
        let cp = paths.filter(&d, &q, QueryKind::Subgraph);
        assert!(ct.is_subset(&cp));
        assert_eq!(ct.to_vec(), vec![2]);
    }

    #[test]
    fn name_and_memory() {
        let d = ds();
        let m = FtvTreeMethod::build(&d, 2);
        assert_eq!(m.name(), "ftv-tree(T=2)");
        assert!(m.index_memory_bytes() > 0);
        assert_eq!(m.feature_size(), 2);
    }

    #[test]
    fn tracks_dataset_mutations() {
        let mut d = ds();
        let m = FtvTreeMethod::build(&d, 2);
        let q = g(&[4, 4], &[(0, 1)]);
        assert!(m.filter(&d, &q, QueryKind::Subgraph).is_empty());
        // Insert a graph that matches the query; the hook must index it.
        let gid = d.insert_graph(g(&[4, 4, 4], &[(0, 1), (1, 2)]));
        assert!(m.on_insert_graph(&d, gid));
        let c = m.filter(&d, &q, QueryKind::Subgraph);
        assert!(c.contains(gid as usize), "inserted graph becomes a candidate");
        // Remove it again; its postings must drop out.
        d.remove_graph(gid);
        m.on_remove_graph(&d, gid);
        assert!(!m.filter(&d, &q, QueryKind::Subgraph).contains(gid as usize));
    }
}
