//! `gc` — command-line front-end to the GraphCache demonstrator.
//!
//! Subcommands:
//!
//! ```text
//! gc generate --out ds.tve [--count 100] [--seed 42] [--model molecules|er|ba]
//! gc run      --dataset ds.tve [--queries 300] [--workload zipf|uniform|drift]
//!             [--policy HD] [--capacity 50] [--feature-size 2] [--dev]
//!             [--clients 8] [--check]   # N>1: concurrent SharedGraphCache mode
//!             [--snapshot-dir state/]   # warm-restart + journal + snapshot
//! gc save     --dataset ds.tve --snapshot-dir state/   # run + persist
//! gc load     --dataset ds.tve --snapshot-dir state/   # restore + dashboards
//! gc journey  --dataset ds.tve [--seed 7]
//! gc compare  --dataset ds.tve [--queries 300] [--workload zipf]
//! ```
//!
//! With `--snapshot-dir`, `run` restores the cache from the directory's
//! snapshot + journal (cold on first use or after corruption — recovery is
//! fail-closed), journals this run's admissions/evictions, and writes a
//! fresh snapshot at exit, so consecutive runs keep their warm hit ratio.
//! This composes with `--clients N`: the shared cache is warm-restarted
//! (entries re-routed to their home shards) before the client threads
//! start, and the closing snapshot is taken after they join.
//!
//! Datasets are plain `t/v/e` text files (the AIDS/gSpan format), so real
//! datasets drop in directly.

use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind, RecoveryReport};
use gc_demo::{
    developer_monitor, end_user_monitor, run_multi_client, run_multi_client_persistent,
    run_query_journey, run_workload_comparison,
};
use gc_method::{Dataset, FtvMethod, QueryKind};
use gc_workload::random::{ba_dataset, er_dataset};
use gc_workload::{molecule_dataset, nested_chain, Workload, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument {:?}", args[i]);
            i += 1;
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Arc<Dataset>, String> {
    let path = flags.get("dataset").ok_or("missing --dataset <file.tve>")?;
    let graphs = gc_graph::io::load_dataset(path).map_err(|e| e.to_string())?;
    if graphs.is_empty() {
        return Err(format!("{path}: empty dataset"));
    }
    Ok(Arc::new(Dataset::new(graphs)))
}

fn workload_kind(name: &str) -> Result<WorkloadKind, String> {
    match name {
        "uniform" => Ok(WorkloadKind::Uniform),
        "zipf" => Ok(WorkloadKind::Zipf { skew: 1.2 }),
        "drift" => Ok(WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.3 }),
        other => Err(format!("unknown workload {other:?} (uniform|zipf|drift)")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("missing --out <file.tve>")?;
    let count: usize = get(flags, "count", 100);
    let seed: u64 = get(flags, "seed", 42);
    let model = flags.get("model").map(String::as_str).unwrap_or("molecules");
    let graphs = match model {
        "molecules" => molecule_dataset(count, seed),
        "er" => er_dataset(count, 25, 0.12, 4, seed),
        "ba" => ba_dataset(count, 30, 2, 4, seed),
        other => return Err(format!("unknown model {other:?} (molecules|er|ba)")),
    };
    std::fs::write(out, gc_graph::io::dataset_to_string(&graphs)).map_err(|e| e.to_string())?;
    println!("wrote {count} {model} graphs to {out}");
    Ok(())
}

fn cache_config(flags: &HashMap<String, String>) -> CacheConfig {
    // Group-commit fsync policy: --fsync-every N / --fsync-interval-ms M
    // (mutually exclusive; the per-count bound wins when both are given).
    let fsync_policy = if let Some(n) = flags.get("fsync-every").and_then(|v| v.parse().ok()) {
        gc_core::FsyncPolicy::EveryN(n)
    } else if let Some(ms) = flags.get("fsync-interval-ms").and_then(|v| v.parse().ok()) {
        gc_core::FsyncPolicy::IntervalMs(ms)
    } else {
        gc_core::FsyncPolicy::Never
    };
    CacheConfig {
        capacity: get(flags, "capacity", 50),
        window_size: get(flags, "window", 10),
        snapshot_interval: flags.get("snapshot-interval").and_then(|v| v.parse().ok()),
        journal_max_bytes: flags.get("journal-max-bytes").and_then(|v| v.parse().ok()),
        fsync_policy,
        ..CacheConfig::default()
    }
}

fn build_cache(
    dataset: &Arc<Dataset>,
    flags: &HashMap<String, String>,
) -> Result<GraphCache, String> {
    let policy: PolicyKind =
        flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
    let feature_size: usize = get(flags, "feature-size", 2);
    GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, feature_size)),
        policy,
        cache_config(flags),
    )
}

/// Build a cache warm-restarted from `--snapshot-dir` (journaling stays
/// attached, so the session's admissions persist too).
fn build_persistent_cache(
    dataset: &Arc<Dataset>,
    flags: &HashMap<String, String>,
    dir: &str,
) -> Result<(GraphCache, RecoveryReport), String> {
    let policy: PolicyKind =
        flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
    let feature_size: usize = get(flags, "feature-size", 2);
    let store = Arc::new(CacheStore::open(dir).map_err(|e| format!("{dir}: {e}"))?);
    GraphCache::restore_from(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, feature_size)),
        policy.make(),
        cache_config(flags),
        store,
    )
}

fn finish_snapshot(gc: &mut GraphCache) -> Result<(), String> {
    let info = gc.snapshot_now()?;
    println!(
        "[Persistence] snapshot generation {} written: {} entries, {} KiB",
        info.generation,
        info.entries,
        info.snapshot_bytes / 1024
    );
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let spec = WorkloadSpec {
        n_queries: get(flags, "queries", 300),
        pool_size: get(flags, "pool", 100),
        kind: workload_kind(flags.get("workload").map(String::as_str).unwrap_or("zipf"))?,
        seed: get(flags, "seed", 7),
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // Multi-client mode: stripe the workload over N threads hammering one
    // SharedGraphCache (optionally cross-checking answers with --check;
    // `--snapshot-dir` warm-restarts the shared cache and journals the
    // session, exactly like the sequential mode).
    let clients: usize = get(flags, "clients", 1);
    if clients > 1 {
        let policy: PolicyKind =
            flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
        let feature_size: usize = get(flags, "feature-size", 2);
        let config = CacheConfig {
            // With worker threads available, shard probes fan out and
            // verification parallelizes.
            threads: clients,
            ..cache_config(flags)
        };
        let make_method =
            || -> Box<dyn gc_method::Method> { Box::new(FtvMethod::build(&dataset, feature_size)) };
        let check = flags.contains_key("check");
        let run = match flags.get("snapshot-dir") {
            Some(dir) => {
                let store = Arc::new(CacheStore::open(dir).map_err(|e| format!("{dir}: {e}"))?);
                let (run, recovery, info) = run_multi_client_persistent(
                    &dataset,
                    &make_method,
                    policy,
                    &config,
                    &workload,
                    clients,
                    check,
                    store,
                )?;
                println!("[Persistence] {}", recovery.describe());
                println!(
                    "[Persistence] snapshot generation {} written: {} entries, {} KiB",
                    info.generation,
                    info.entries,
                    info.snapshot_bytes / 1024
                );
                run
            }
            None => {
                run_multi_client(&dataset, &make_method, policy, &config, &workload, clients, check)
            }
        };
        print!("{}", run.render());
        if run.mismatches > 0 {
            return Err(format!("{} answer mismatches vs sequential replay", run.mismatches));
        }
        return Ok(());
    }

    let snapshot_dir = flags.get("snapshot-dir").cloned();
    let mut gc = match &snapshot_dir {
        Some(dir) => {
            let (gc, recovery) = build_persistent_cache(&dataset, flags, dir)?;
            println!("[Persistence] {}", recovery.describe());
            gc
        }
        None => build_cache(&dataset, flags)?,
    };
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    println!("{}", end_user_monitor(&gc));
    if flags.contains_key("dev") {
        println!("{}", developer_monitor(&gc, get(flags, "top", 15)));
    }
    if snapshot_dir.is_some() {
        finish_snapshot(&mut gc)?;
    }
    Ok(())
}

/// `gc save`: run a workload and persist the warm cache — `gc run` with a
/// mandatory snapshot dir and a closing snapshot.
fn cmd_save(flags: &HashMap<String, String>) -> Result<(), String> {
    if !flags.contains_key("snapshot-dir") {
        return Err("missing --snapshot-dir <dir>".into());
    }
    cmd_run(flags)
}

/// `gc load`: warm-restart from a snapshot dir and show what came back,
/// without running any workload.
fn cmd_load(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags.get("snapshot-dir").ok_or("missing --snapshot-dir <dir>")?;
    let dataset = load_dataset(flags)?;
    let (gc, recovery) = build_persistent_cache(&dataset, flags, dir)?;
    println!("[Persistence] {}", recovery.describe());
    println!("{}", end_user_monitor(&gc));
    println!("{}", developer_monitor(&gc, get(flags, "top", 15)));
    if !recovery.warm {
        return Err(recovery.cold_reason.unwrap_or_else(|| "cold start".into()));
    }
    Ok(())
}

/// `gc doctor <dir>`: offline health check of a persistence directory —
/// CRC-walks the snapshot and every journal, validates the generation
/// chain, reports torn tails, and says what a restore would recover.
/// Exits nonzero when the directory is corrupt (a restore would be forced
/// cold by damage, not by benign emptiness).
fn cmd_doctor(dir: &str) -> Result<(), String> {
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("{dir}: not a directory"));
    }
    let report = gc_core::persist::inspect_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    println!("{}", report.describe());
    if report.healthy() {
        Ok(())
    } else {
        Err(format!("{dir}: persistence directory is corrupt (see report above)"))
    }
}

fn cmd_journey(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let mut gc = build_cache(&dataset, flags)?;
    let seed: u64 = get(flags, "seed", 7);
    let mut rng = StdRng::seed_from_u64(seed);
    let chain = nested_chain(dataset.graph(0), &[3, 5, 8, 12], &mut rng);
    if chain.len() < 4 {
        return Err("dataset graph 0 is too small to stage a journey".into());
    }
    for (i, q) in chain.iter().enumerate() {
        if i != 2 {
            gc.query(q, QueryKind::Subgraph);
        }
    }
    let journey = run_query_journey(&mut gc, &chain[2], QueryKind::Subgraph);
    println!("{}", journey.rendering);
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let spec = WorkloadSpec {
        n_queries: get(flags, "queries", 300),
        pool_size: get(flags, "pool", 150),
        kind: workload_kind(flags.get("workload").map(String::as_str).unwrap_or("zipf"))?,
        seed: get(flags, "seed", 7),
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let feature_size: usize = get(flags, "feature-size", 2);
    let config = CacheConfig {
        capacity: get(flags, "capacity", 25),
        window_size: get(flags, "window", 10),
        ..CacheConfig::default()
    };
    let cmp = run_workload_comparison(
        &dataset,
        &|| Box::new(FtvMethod::build(&dataset, feature_size)),
        &config,
        &workload,
    );
    println!("{}", cmp.render());
    println!("winner: {}", cmp.winner());
    Ok(())
}

const USAGE: &str = "usage: gc <generate|run|save|load|doctor|journey|compare> [--flag value]...
  gc generate --out ds.tve [--count N] [--seed S] [--model molecules|er|ba]
  gc run      --dataset ds.tve [--queries N] [--workload zipf|uniform|drift]
              [--policy LRU|POP|PIN|PINC|HD] [--capacity N] [--feature-size L] [--dev]
              [--clients N] [--check]   (N>1: concurrent SharedGraphCache mode)
              [--snapshot-dir DIR [--snapshot-interval N] [--journal-max-bytes B]
               [--fsync-every N | --fsync-interval-ms M]]
              (DIR: warm-restart from it, journal this run, snapshot at exit;
               composes with --clients N: shared-cache restore + snapshot)
  gc save     --dataset ds.tve --snapshot-dir DIR [run flags]  (run + persist)
  gc load     --dataset ds.tve --snapshot-dir DIR  (restore + show dashboards)
  gc doctor   DIR   (offline check: CRC walk, generation chain, torn tails,
                     what a restore would recover; exit 1 if corrupt)
  gc journey  --dataset ds.tve [--seed S]
  gc compare  --dataset ds.tve [--queries N] [--workload ...] [--capacity N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `doctor` takes a positional directory, not --flags.
    if cmd == "doctor" {
        let Some(dir) = args.get(1) else {
            eprintln!("gc: missing directory\n  gc doctor DIR");
            return ExitCode::from(2);
        };
        return match cmd_doctor(dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gc: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "run" => cmd_run(&flags),
        "save" => cmd_save(&flags),
        "load" => cmd_load(&flags),
        "journey" => cmd_journey(&flags),
        "compare" => cmd_compare(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gc: {e}");
            ExitCode::FAILURE
        }
    }
}
