//! `gc` — command-line front-end to the GraphCache demonstrator.
//!
//! Subcommands:
//!
//! ```text
//! gc generate --out ds.tve [--count 100] [--seed 42] [--model molecules|er|ba]
//! gc run      --dataset ds.tve [--queries 300] [--workload zipf|uniform|drift]
//!             [--policy HD] [--capacity 50] [--feature-size 2] [--dev]
//!             [--clients 8] [--check]   # N>1: concurrent SharedGraphCache mode
//!             [--snapshot-dir state/]   # warm-restart + journal + snapshot
//!             [--server 127.0.0.1:7411] # client mode: POST the workload to
//!                                       # a running `gc serve` over HTTP
//! gc serve    --dataset ds.tve [--addr 127.0.0.1:7411] [--workers 4]
//!             [--queue-depth 64] [--deadline-ms 5000] [--snapshot-dir state/]
//!             [--duration-secs S]       # omitted: serve until Enter/EOF
//! gc save     --dataset ds.tve --snapshot-dir state/   # run + persist
//! gc load     --dataset ds.tve --snapshot-dir state/   # restore + dashboards
//! gc mutate   --dataset ds.tve [--rounds 5] [--inserts 3] [--removes 2]
//!             [--check] [--server 127.0.0.1:7411]   # live dataset demo
//! gc journey  --dataset ds.tve [--seed 7]
//! gc compare  --dataset ds.tve [--queries 300] [--workload zipf]
//! gc top      [--server 127.0.0.1:7411] [--interval-ms 1000] [--iterations N]
//! ```
//!
//! With `--snapshot-dir`, `run` restores the cache from the directory's
//! snapshot + journal (cold on first use or after corruption — recovery is
//! fail-closed), journals this run's admissions/evictions, and writes a
//! fresh snapshot at exit, so consecutive runs keep their warm hit ratio.
//! This composes with `--clients N`: the shared cache is warm-restarted
//! (entries re-routed to their home shards) before the client threads
//! start, and the closing snapshot is taken after they join.
//!
//! Datasets are plain `t/v/e` text files (the AIDS/gSpan format), so real
//! datasets drop in directly.

use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind, RecoveryReport, SharedGraphCache};
use gc_demo::{
    developer_monitor, end_user_monitor, render_end_user_monitor, run_multi_client,
    run_multi_client_persistent, run_query_journey, run_workload_comparison, DeploymentInfo,
};
use gc_method::{Dataset, FtvMethod, QueryKind};
use gc_server::{HttpClient, QueryResponse, Server, ServerConfig};
use gc_workload::random::{ba_dataset, er_dataset};
use gc_workload::{molecule_dataset, nested_chain, Workload, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument {:?}", args[i]);
            i += 1;
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Arc<Dataset>, String> {
    let path = flags.get("dataset").ok_or("missing --dataset <file.tve>")?;
    let graphs = gc_graph::io::load_dataset(path).map_err(|e| e.to_string())?;
    if graphs.is_empty() {
        return Err(format!("{path}: empty dataset"));
    }
    Ok(Arc::new(Dataset::new(graphs)))
}

fn workload_kind(name: &str) -> Result<WorkloadKind, String> {
    match name {
        "uniform" => Ok(WorkloadKind::Uniform),
        "zipf" => Ok(WorkloadKind::Zipf { skew: 1.2 }),
        "drift" => Ok(WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.3 }),
        other => Err(format!("unknown workload {other:?} (uniform|zipf|drift)")),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("missing --out <file.tve>")?;
    let count: usize = get(flags, "count", 100);
    let seed: u64 = get(flags, "seed", 42);
    let model = flags.get("model").map(String::as_str).unwrap_or("molecules");
    let graphs = match model {
        "molecules" => molecule_dataset(count, seed),
        "er" => er_dataset(count, 25, 0.12, 4, seed),
        "ba" => ba_dataset(count, 30, 2, 4, seed),
        other => return Err(format!("unknown model {other:?} (molecules|er|ba)")),
    };
    std::fs::write(out, gc_graph::io::dataset_to_string(&graphs)).map_err(|e| e.to_string())?;
    println!("wrote {count} {model} graphs to {out}");
    Ok(())
}

fn cache_config(flags: &HashMap<String, String>) -> CacheConfig {
    // Group-commit fsync policy: --fsync-every N / --fsync-interval-ms M
    // (mutually exclusive; the per-count bound wins when both are given).
    let fsync_policy = if let Some(n) = flags.get("fsync-every").and_then(|v| v.parse().ok()) {
        gc_core::FsyncPolicy::EveryN(n)
    } else if let Some(ms) = flags.get("fsync-interval-ms").and_then(|v| v.parse().ok()) {
        gc_core::FsyncPolicy::IntervalMs(ms)
    } else {
        gc_core::FsyncPolicy::Never
    };
    CacheConfig {
        capacity: get(flags, "capacity", 50),
        window_size: get(flags, "window", 10),
        snapshot_interval: flags.get("snapshot-interval").and_then(|v| v.parse().ok()),
        journal_max_bytes: flags.get("journal-max-bytes").and_then(|v| v.parse().ok()),
        fsync_policy,
        ..CacheConfig::default()
    }
}

fn build_cache(
    dataset: &Arc<Dataset>,
    flags: &HashMap<String, String>,
) -> Result<GraphCache, String> {
    let policy: PolicyKind =
        flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
    let feature_size: usize = get(flags, "feature-size", 2);
    GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, feature_size)),
        policy,
        cache_config(flags),
    )
}

/// Build a cache warm-restarted from `--snapshot-dir` (journaling stays
/// attached, so the session's admissions persist too).
fn build_persistent_cache(
    dataset: &Arc<Dataset>,
    flags: &HashMap<String, String>,
    dir: &str,
) -> Result<(GraphCache, RecoveryReport), String> {
    let policy: PolicyKind =
        flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
    let feature_size: usize = get(flags, "feature-size", 2);
    let store = Arc::new(CacheStore::open(dir).map_err(|e| format!("{dir}: {e}"))?);
    GraphCache::restore_from(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, feature_size)),
        policy.make(),
        cache_config(flags),
        store,
    )
}

fn finish_snapshot(gc: &mut GraphCache) -> Result<(), String> {
    let info = gc.snapshot_now()?;
    println!(
        "[Persistence] snapshot generation {} written: {} entries, {} KiB",
        info.generation,
        info.entries,
        info.snapshot_bytes / 1024
    );
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let spec = WorkloadSpec {
        n_queries: get(flags, "queries", 300),
        pool_size: get(flags, "pool", 100),
        kind: workload_kind(flags.get("workload").map(String::as_str).unwrap_or("zipf"))?,
        seed: get(flags, "seed", 7),
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // Server-client mode: POST the workload to a running `gc serve`
    // front-end instead of executing locally (`--check` cross-checks every
    // HTTP answer against a fault-free local base execution).
    if let Some(addr) = flags.get("server") {
        return run_against_server(addr, &dataset, &workload, flags);
    }

    // Multi-client mode: stripe the workload over N threads hammering one
    // SharedGraphCache (optionally cross-checking answers with --check;
    // `--snapshot-dir` warm-restarts the shared cache and journals the
    // session, exactly like the sequential mode).
    let clients: usize = get(flags, "clients", 1);
    if clients > 1 {
        let policy: PolicyKind =
            flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
        let feature_size: usize = get(flags, "feature-size", 2);
        let config = CacheConfig {
            // With worker threads available, shard probes fan out and
            // verification parallelizes.
            threads: clients,
            ..cache_config(flags)
        };
        let make_method =
            || -> Box<dyn gc_method::Method> { Box::new(FtvMethod::build(&dataset, feature_size)) };
        let check = flags.contains_key("check");
        let run = match flags.get("snapshot-dir") {
            Some(dir) => {
                let store = Arc::new(CacheStore::open(dir).map_err(|e| format!("{dir}: {e}"))?);
                let (run, recovery, info) = run_multi_client_persistent(
                    &dataset,
                    &make_method,
                    policy,
                    &config,
                    &workload,
                    clients,
                    check,
                    store,
                )?;
                println!("[Persistence] {}", recovery.describe());
                println!(
                    "[Persistence] snapshot generation {} written: {} entries, {} KiB",
                    info.generation,
                    info.entries,
                    info.snapshot_bytes / 1024
                );
                run
            }
            None => {
                run_multi_client(&dataset, &make_method, policy, &config, &workload, clients, check)
            }
        };
        print!("{}", run.render());
        if run.mismatches > 0 {
            return Err(format!("{} answer mismatches vs sequential replay", run.mismatches));
        }
        return Ok(());
    }

    let snapshot_dir = flags.get("snapshot-dir").cloned();
    let mut gc = match &snapshot_dir {
        Some(dir) => {
            let (gc, recovery) = build_persistent_cache(&dataset, flags, dir)?;
            println!("[Persistence] {}", recovery.describe());
            gc
        }
        None => build_cache(&dataset, flags)?,
    };
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    println!("{}", end_user_monitor(&gc));
    if flags.contains_key("dev") {
        println!("{}", developer_monitor(&gc, get(flags, "top", 15)));
    }
    if snapshot_dir.is_some() {
        finish_snapshot(&mut gc)?;
    }
    Ok(())
}

/// `gc save`: run a workload and persist the warm cache — `gc run` with a
/// mandatory snapshot dir and a closing snapshot.
fn cmd_save(flags: &HashMap<String, String>) -> Result<(), String> {
    if !flags.contains_key("snapshot-dir") {
        return Err("missing --snapshot-dir <dir>".into());
    }
    cmd_run(flags)
}

/// `gc load`: warm-restart from a snapshot dir and show what came back,
/// without running any workload.
fn cmd_load(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags.get("snapshot-dir").ok_or("missing --snapshot-dir <dir>")?;
    let dataset = load_dataset(flags)?;
    let (gc, recovery) = build_persistent_cache(&dataset, flags, dir)?;
    println!("[Persistence] {}", recovery.describe());
    println!("{}", end_user_monitor(&gc));
    println!("{}", developer_monitor(&gc, get(flags, "top", 15)));
    if !recovery.warm {
        return Err(recovery.cold_reason.unwrap_or_else(|| "cold start".into()));
    }
    Ok(())
}

/// `gc doctor [--json] <dir>`: offline health check of a persistence
/// directory — CRC-walks the snapshot and every journal, validates the
/// generation chain, reports torn tails, and says what a restore would
/// recover. `--json` emits the full report as JSON for scripting; either
/// way the exit code is nonzero exactly when the directory is corrupt (a
/// restore would be forced cold by damage, not by benign emptiness).
fn cmd_doctor(dir: &str, json: bool) -> Result<(), String> {
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("{dir}: not a directory"));
    }
    let report = gc_core::persist::inspect_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?
        );
    } else {
        println!("{}", report.describe());
    }
    if report.healthy() {
        Ok(())
    } else if json {
        Err(format!("{dir}: persistence directory is corrupt (see JSON verdict)"))
    } else {
        Err(format!("{dir}: persistence directory is corrupt (see report above)"))
    }
}

/// `gc serve`: run the overload-hardened HTTP front-end over a shared
/// cache until `--duration-secs` elapses (or Enter/EOF on stdin), then
/// drain gracefully — finishing in-flight requests and, with
/// `--snapshot-dir`, cutting a final snapshot for a warm restart.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let policy: PolicyKind =
        flags.get("policy").map(|p| p.parse()).transpose()?.unwrap_or(PolicyKind::Hd);
    let feature_size: usize = get(flags, "feature-size", 2);
    let workers: usize = get(flags, "workers", 4);
    let config = CacheConfig {
        // Shard probes and verification fan out across the worker pool.
        threads: get(flags, "threads", workers),
        ..cache_config(flags)
    };
    let method = FtvMethod::build(&dataset, feature_size);
    let cache = match flags.get("snapshot-dir") {
        Some(dir) => {
            let store = Arc::new(CacheStore::open(dir).map_err(|e| format!("{dir}: {e}"))?);
            let (gc, recovery) = SharedGraphCache::restore_from(
                dataset.clone(),
                Arc::new(method),
                || policy.make(),
                config,
                store,
            )?;
            println!("[Persistence] {}", recovery.describe());
            gc
        }
        None => SharedGraphCache::with_policy(dataset.clone(), Box::new(method), policy, config)?,
    };
    let server = Server::start(
        Arc::new(cache),
        ServerConfig {
            addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7411".into()),
            workers,
            queue_depth: get(flags, "queue-depth", 64),
            request_deadline: std::time::Duration::from_millis(get(flags, "deadline-ms", 5_000)),
            ..ServerConfig::default()
        },
    )?;
    println!("gc-server listening on http://{}", server.addr());
    println!(
        "  POST /query?kind=sub|super (t/v/e body)  GET /stats /metrics /healthz /readyz \
         /debug/traces /debug/slow"
    );
    match flags.get("duration-secs").and_then(|v| v.parse::<u64>().ok()) {
        Some(secs) => {
            println!("serving for {secs}s, then draining");
            std::thread::sleep(std::time::Duration::from_secs(secs));
        }
        None => {
            println!("press Enter to drain and exit");
            let _ = std::io::stdin().read_line(&mut String::new());
        }
    }
    println!(
        "{}",
        render_end_user_monitor(
            &DeploymentInfo::of_shared(server.cache()),
            &server.serving_stats()
        )
    );
    let report = server.drain();
    println!(
        "[Drain] {}/{} workers finished in {:.0} ms{}{}",
        report.workers_finished,
        report.workers_total,
        report.drained_in.as_secs_f64() * 1e3,
        if report.forced { " (forced: drain bound expired)" } else { "" },
        match report.snapshot_generation {
            Some(g) => format!(", final snapshot generation {g}"),
            None => String::new(),
        }
    );
    if report.forced {
        return Err("drain bound expired with workers still busy".into());
    }
    Ok(())
}

/// `gc run --server ADDR`: drive a running `gc serve` over HTTP with the
/// same workload `gc run` would execute locally. Both sides must be given
/// the same `--dataset`. With `--check`, every answer is cross-checked
/// against a local base (Method M alone) execution.
fn run_against_server(
    addr: &str,
    dataset: &Arc<Dataset>,
    workload: &gc_workload::Workload,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let addr = addr.trim_start_matches("http://");
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--server {addr}: {e}"))?;
    let check = flags.contains_key("check");
    let feature_size: usize = get(flags, "feature-size", 2);
    let method = check.then(|| FtvMethod::build(dataset, feature_size));
    let mut client = HttpClient::connect(addr)?;
    let (mut ok, mut exact_hits, mut shed, mut failed, mut checked) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let t0 = std::time::Instant::now();
    for wq in &workload.queries {
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&wq.graph));
        let path = match wq.kind {
            QueryKind::Subgraph => "/query?kind=sub",
            QueryKind::Supergraph => "/query?kind=super",
        };
        let resp = match client.post(path, body.as_bytes()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("gc: request failed: {e}");
                failed += 1;
                continue;
            }
        };
        match resp.status {
            200 => {
                let parsed: QueryResponse = serde_json::from_str(&resp.body_text())
                    .map_err(|e| format!("bad /query response: {e}"))?;
                ok += 1;
                exact_hits += parsed.exact_hit as u64;
                if let Some(method) = &method {
                    let base = gc_method::execute_base(
                        dataset,
                        method,
                        gc_method::Engine::Vf2,
                        &wq.graph,
                        wq.kind,
                    );
                    if parsed.answer != base.answer.to_vec() {
                        return Err(format!(
                            "answer mismatch vs local base execution (server {} ids, base {})",
                            parsed.answer.len(),
                            base.answer.count()
                        ));
                    }
                    checked += 1;
                }
            }
            503 => shed += 1,
            other => {
                eprintln!("gc: HTTP {other}: {}", resp.body_text());
                failed += 1;
            }
        }
    }
    let elapsed = t0.elapsed();
    println!("=== Server Run ===");
    println!("server   : http://{addr}");
    println!(
        "requests : {} sent, {ok} ok ({exact_hits} exact hits), {shed} shed, {failed} failed",
        workload.queries.len()
    );
    if check {
        println!("checked  : {checked}/{ok} answers match local base execution exactly");
    }
    println!(
        "time     : {:.1} ms total, {:.2} ms/query over HTTP",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / workload.queries.len().max(1) as f64
    );
    let stats = client.get("/stats")?;
    if stats.status == 200 {
        println!("\n[Server /stats]\n{}", stats.body_text());
    }
    if failed > 0 {
        return Err(format!("{failed} requests failed"));
    }
    Ok(())
}

/// `gc mutate`: the dynamic-dataset demo — rounds of interleaved
/// queries, inserts, and removes against one live cache, showing the
/// generation counter, in-place answer repair, and the answer memo at
/// work. With `--check`, every answer is cross-checked against Method M
/// alone on the dataset *as mutated so far*. With `--server ADDR`, the
/// mutations are POSTed to a running `gc serve` via `/mutate` instead.
fn cmd_mutate(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let rounds: usize = get(flags, "rounds", 5);
    let inserts: usize = get(flags, "inserts", 3);
    let removes: usize = get(flags, "removes", 2);
    let queries: usize = get(flags, "queries", 40);
    let seed: u64 = get(flags, "seed", 7);

    if let Some(addr) = flags.get("server") {
        return mutate_against_server(addr, &dataset, rounds, inserts, removes, queries, seed);
    }

    let check = flags.contains_key("check");
    let mut gc = build_cache(&dataset, flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let fresh = molecule_dataset(rounds * inserts, seed ^ 0x6d75_7461);
    let mut fresh = fresh.into_iter();
    let mut checked = 0u64;

    println!("=== Dynamic Dataset Demo ===");
    println!(
        "round | generation | live graphs | memo entries | memo hits | hit ratio | avg tests/query"
    );
    for round in 0..rounds {
        for _ in 0..queries {
            let live: Vec<u32> = gc.dataset().live_mask().iter().map(|gid| gid as u32).collect();
            let src = live[rng.gen_range(0..live.len())];
            let Some(q) = gc_workload::extract_query(gc.dataset().graph(src), 6, &mut rng) else {
                continue;
            };
            let r = gc.query(&q, QueryKind::Subgraph);
            if check {
                let base = gc_method::execute_base(
                    gc.dataset(),
                    &gc_method::SiMethod,
                    gc_method::Engine::Vf2,
                    &q,
                    QueryKind::Subgraph,
                );
                if r.answer != base.answer {
                    return Err(format!(
                        "round {round}: answer mismatch vs Method M on the mutated dataset"
                    ));
                }
                checked += 1;
            }
        }
        for g in fresh.by_ref().take(inserts) {
            gc.insert_graph(g);
        }
        for _ in 0..removes {
            let live: Vec<u32> = gc.dataset().live_mask().iter().map(|g| g as u32).collect();
            if live.len() <= 4 {
                break;
            }
            gc.remove_graph(live[rng.gen_range(0..live.len())]);
        }
        let s = gc.stats();
        println!(
            "{round:>5} | {:>10} | {:>11} | {:>12} | {:>9} | {:>8.1}% | {:>15.1}",
            s.dataset_generation,
            s.dataset_live_graphs,
            gc.memo_len(),
            s.memo_hits,
            s.hit_ratio() * 100.0,
            s.avg_tests_per_query(),
        );
    }
    if check {
        println!("checked  : {checked} answers match Method M on the live dataset exactly");
    }
    Ok(())
}

/// Drive a running `gc serve` through `/mutate` + `/query`.
fn mutate_against_server(
    addr: &str,
    dataset: &Arc<Dataset>,
    rounds: usize,
    inserts: usize,
    removes: usize,
    queries: usize,
    seed: u64,
) -> Result<(), String> {
    let addr = addr.trim_start_matches("http://");
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--server {addr}: {e}"))?;
    let mut client = HttpClient::connect(addr)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = molecule_dataset(rounds * inserts, seed ^ 0x6d75_7461).into_iter();
    let mut inserted: Vec<u32> = Vec::new();
    let (mut ok, mut memo_hits) = (0u64, 0u64);
    println!("=== Dynamic Dataset Demo (server http://{addr}) ===");
    for round in 0..rounds {
        for _ in 0..queries {
            let src = rng.gen_range(0..dataset.len() as u32);
            let Some(q) = gc_workload::extract_query(dataset.graph(src), 6, &mut rng) else {
                continue;
            };
            let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&q));
            let resp = client.post("/query?kind=sub", body.as_bytes())?;
            if resp.status == 200 {
                let parsed: QueryResponse = serde_json::from_str(&resp.body_text())
                    .map_err(|e| format!("bad /query response: {e}"))?;
                ok += 1;
                memo_hits += parsed.memo_hit as u64;
            }
        }
        for g in fresh.by_ref().take(inserts) {
            let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&g));
            let resp = client.post("/mutate?op=insert", body.as_bytes())?;
            if resp.status != 200 {
                return Err(format!("insert failed: HTTP {}: {}", resp.status, resp.body_text()));
            }
            let parsed: gc_server::MutateResponse = serde_json::from_str(&resp.body_text())
                .map_err(|e| format!("bad /mutate response: {e}"))?;
            inserted.push(parsed.graph_id);
        }
        for _ in 0..removes.min(inserted.len()) {
            let gid = inserted.remove(0);
            let resp = client.post(&format!("/mutate?op=remove&id={gid}"), &[])?;
            if resp.status != 200 {
                return Err(format!("remove failed: HTTP {}: {}", resp.status, resp.body_text()));
            }
        }
        let stats = client.get("/stats")?;
        if stats.status != 200 {
            return Err(format!("/stats failed: HTTP {}", stats.status));
        }
        let s: gc_server::StatsResponse = serde_json::from_str(&stats.body_text())
            .map_err(|e| format!("bad /stats response: {e}"))?;
        println!(
            "round {round}: generation {}, {} live graphs, {ok} queries ok, {memo_hits} memo hits",
            s.dataset_generation, s.dataset_live_graphs
        );
    }
    Ok(())
}

/// `gc top`: live terminal dashboard over a running `gc serve` — polls
/// `/stats` and `/debug/slow` every `--interval-ms` and redraws in place
/// (ANSI clear), showing throughput, the per-stage pipeline latency
/// table, and the most recent slow queries. `--iterations N` bounds the
/// refresh loop (0, the default, runs until killed).
fn cmd_top(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("server").cloned().unwrap_or_else(|| "127.0.0.1:7411".into());
    let addr = addr.trim_start_matches("http://");
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--server {addr}: {e}"))?;
    let interval = std::time::Duration::from_millis(get(flags, "interval-ms", 1000));
    let iterations: u64 = get(flags, "iterations", 0);
    let mut client = HttpClient::connect(addr)?;
    let mut tick = 0u64;
    loop {
        let stats = client.get("/stats")?;
        if stats.status != 200 {
            return Err(format!("/stats: HTTP {}", stats.status));
        }
        let s: gc_server::StatsResponse = serde_json::from_str(&stats.body_text())
            .map_err(|e| format!("bad /stats response: {e}"))?;
        let slow = client.get("/debug/slow?n=5")?;
        let slow: gc_server::TracesResponse = serde_json::from_str(&slow.body_text())
            .map_err(|e| format!("bad /debug/slow response: {e}"))?;

        let mut frame = String::with_capacity(2048);
        frame.push_str(&format!(
            "gc top — http://{addr}  (refresh {} ms)\n\n",
            interval.as_millis()
        ));
        frame.push_str(&format!(
            "queries {}  hit ratio {:.1}%  entries {}  generation {}  up {}s{}\n",
            s.queries,
            100.0 * s.hit_ratio,
            s.entries,
            s.dataset_generation,
            s.uptime_secs,
            if s.draining { "  DRAINING" } else { "" }
        ));
        frame.push_str(&format!(
            "requests {}  shed {}  timed out {}  traces sampled {}  slow {}\n",
            s.requests_total,
            s.requests_shed,
            s.requests_timed_out,
            s.traces_sampled,
            s.slow_queries
        ));
        frame.push_str(&format!(
            "latency  p50 {} us  p90 {} us  p99 {} us  (bucket upper bounds)\n\n",
            s.pipeline_p50_us, s.pipeline_p90_us, s.pipeline_p99_us
        ));
        frame.push_str(&format!(
            "{:<8} {:>10} {:>9} {:>9} {:>9}\n",
            "stage", "count", "p50_us", "p90_us", "p99_us"
        ));
        for st in &s.stages {
            frame.push_str(&format!(
                "{:<8} {:>10} {:>9} {:>9} {:>9}\n",
                st.stage, st.count, st.p50_us, st.p90_us, st.p99_us
            ));
        }
        frame.push('\n');
        if slow.traces.is_empty() {
            frame.push_str("slow queries: none\n");
        } else {
            frame.push_str("slow queries (newest first):\n");
            for t in &slow.traces {
                frame.push_str(&format!(
                    "  seq {:<7} {:<5} {:<8} total {:>8} us  verify {:>8} us  cm {:>5}  \
                     answer {:>4}  rid {}\n",
                    t.seq,
                    t.kind,
                    t.outcome,
                    t.total_us,
                    t.verify_us,
                    t.cm_size,
                    t.answer,
                    t.request_id.as_deref().unwrap_or("-")
                ));
            }
        }
        // Clear + home, then the whole frame in one write (no flicker).
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        tick += 1;
        if iterations != 0 && tick >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn cmd_journey(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let mut gc = build_cache(&dataset, flags)?;
    let seed: u64 = get(flags, "seed", 7);
    let mut rng = StdRng::seed_from_u64(seed);
    let chain = nested_chain(dataset.graph(0), &[3, 5, 8, 12], &mut rng);
    if chain.len() < 4 {
        return Err("dataset graph 0 is too small to stage a journey".into());
    }
    for (i, q) in chain.iter().enumerate() {
        if i != 2 {
            gc.query(q, QueryKind::Subgraph);
        }
    }
    let journey = run_query_journey(&mut gc, &chain[2], QueryKind::Subgraph);
    println!("{}", journey.rendering);
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let spec = WorkloadSpec {
        n_queries: get(flags, "queries", 300),
        pool_size: get(flags, "pool", 150),
        kind: workload_kind(flags.get("workload").map(String::as_str).unwrap_or("zipf"))?,
        seed: get(flags, "seed", 7),
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let feature_size: usize = get(flags, "feature-size", 2);
    let config = CacheConfig {
        capacity: get(flags, "capacity", 25),
        window_size: get(flags, "window", 10),
        ..CacheConfig::default()
    };
    let cmp = run_workload_comparison(
        &dataset,
        &|| Box::new(FtvMethod::build(&dataset, feature_size)),
        &config,
        &workload,
    );
    println!("{}", cmp.render());
    println!("winner: {}", cmp.winner());
    Ok(())
}

const USAGE: &str =
    "usage: gc <generate|run|serve|save|load|doctor|mutate|journey|compare|top> [--flag value]...
  gc generate --out ds.tve [--count N] [--seed S] [--model molecules|er|ba]
  gc run      --dataset ds.tve [--queries N] [--workload zipf|uniform|drift]
              [--policy LRU|POP|PIN|PINC|HD] [--capacity N] [--feature-size L] [--dev]
              [--clients N] [--check]   (N>1: concurrent SharedGraphCache mode)
              [--server HOST:PORT]      (client mode: POST the workload to a
               running `gc serve`; --check cross-checks every HTTP answer)
              [--snapshot-dir DIR [--snapshot-interval N] [--journal-max-bytes B]
               [--fsync-every N | --fsync-interval-ms M]]
              (DIR: warm-restart from it, journal this run, snapshot at exit;
               composes with --clients N: shared-cache restore + snapshot)
  gc serve    --dataset ds.tve [--addr 127.0.0.1:7411] [--workers N]
              [--queue-depth N] [--deadline-ms M] [--snapshot-dir DIR]
              [--duration-secs S]   (omitted: serve until Enter/EOF; then a
               graceful drain finishes in-flight work and snapshots)
  gc save     --dataset ds.tve --snapshot-dir DIR [run flags]  (run + persist)
  gc load     --dataset ds.tve --snapshot-dir DIR  (restore + show dashboards)
  gc doctor   [--json] DIR   (offline check: CRC walk, generation chain,
                     torn tails, what a restore would recover; --json emits
                     the full report as JSON; exit 1 if corrupt)
  gc mutate   --dataset ds.tve [--rounds N] [--inserts I] [--removes R]
              [--queries Q] [--seed S] [--check]  (live insert/remove demo;
               --check cross-checks every answer against Method M alone)
              [--server HOST:PORT]  (POST mutations to a running `gc serve`
               via /mutate instead of mutating locally)
  gc journey  --dataset ds.tve [--seed S]
  gc compare  --dataset ds.tve [--queries N] [--workload ...] [--capacity N]
  gc top      [--server HOST:PORT] [--interval-ms M] [--iterations N]
              (live dashboard over a running `gc serve`: throughput,
               per-stage pipeline latency, recent slow queries; N=0 runs
               until killed)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `doctor` takes a positional directory (plus an optional --json).
    if cmd == "doctor" {
        let json = args[1..].iter().any(|a| a == "--json");
        let Some(dir) = args[1..].iter().find(|a| !a.starts_with("--")) else {
            eprintln!("gc: missing directory\n  gc doctor [--json] DIR");
            return ExitCode::from(2);
        };
        return match cmd_doctor(dir, json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gc: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "run" => cmd_run(&flags),
        "serve" => cmd_serve(&flags),
        "save" => cmd_save(&flags),
        "load" => cmd_load(&flags),
        "mutate" => cmd_mutate(&flags),
        "journey" => cmd_journey(&flags),
        "compare" => cmd_compare(&flags),
        "top" => cmd_top(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gc: {e}");
            ExitCode::FAILURE
        }
    }
}
