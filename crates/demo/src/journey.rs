//! Scenario I: The Query Journey (paper §3.2, Fig. 3).
//!
//! Executes one query against a (typically pre-warmed) [`GraphCache`] and
//! narrates every stage of the computation: cache hits found, Method M's
//! candidate set, savings from the sub and super cases, the reduced
//! verification set, the survivors, and the final answer — ending with the
//! speedup in sub-iso tests, exactly like the demo's worked example
//! (75 → 43, speedup 1.74).

use crate::ascii;
use gc_core::{GraphCache, QueryReport};
use gc_graph::Graph;
use gc_method::QueryKind;

/// The captured journey: the report plus its rendering.
#[derive(Debug)]
pub struct QueryJourney {
    /// The underlying per-query report.
    pub report: QueryReport,
    /// Multi-panel text rendering.
    pub rendering: String,
}

/// Run `query` through `gc` and capture the Fig. 3 panels.
pub fn run_query_journey(gc: &mut GraphCache, query: &Graph, kind: QueryKind) -> QueryJourney {
    let report = gc.query(query, kind);
    let rendering = render(gc, query, &report);
    QueryJourney { report, rendering }
}

fn render(gc: &GraphCache, query: &Graph, r: &QueryReport) -> String {
    let mut out = String::new();
    let per_row = 50;
    out.push_str(&format!(
        "=== The Query Journey ({} query, {} vertices / {} edges) ===\n",
        r.kind,
        query.vertex_count(),
        query.edge_count()
    ));
    if r.exact_hit {
        out.push_str(&format!(
            "(a) exact-match HIT: answer served from cache, {} sub-iso tests saved\n(h) A: {}\n",
            r.cm_size,
            ascii::set_summary(&r.answer, 12),
        ));
        return out;
    }
    out.push_str(&format!("(a) H  — sub-case hits (query ⊑ cached): {:?}\n", r.sub_hits));
    out.push_str(&format!("(e) H' — super-case hits (cached ⊑ query): {:?}\n", r.super_hits));
    out.push_str(&format!("(b) C_M — Method M candidates, |C_M| = {}\n", r.cm_size));
    out.push_str(&ascii::id_grid(&r.cm_set, per_row));
    out.push_str(&format!(
        "(c) S  — definite answers from hits, |S| = {} : {}\n",
        r.definite,
        ascii::set_summary(&r.definite_set, 12)
    ));
    let pruned_away = r.cm_size.saturating_sub(r.verified + r.definite);
    out.push_str(&format!("(d) S' — definite non-answers pruned, |S'| = {pruned_away}\n"));
    out.push_str(&format!("(f) C  — reduced candidate set, |C| = {}\n", r.verified));
    out.push_str(&ascii::id_grid(&r.verified_set, per_row));
    out.push_str(&format!(
        "(g) R  — survivors of sub-iso over C, |R| = {} : {}\n",
        r.survivors,
        ascii::set_summary(&r.survivors_set, 12)
    ));
    out.push_str(&format!(
        "(h) A = R ∪ S, |A| = {} : {}\n",
        r.answer.count(),
        ascii::set_summary(&r.answer, 12)
    ));
    out.push_str(&format!(
        "speedup in sub-iso testing: {}/{} = {:.2} (probe overhead: {} tests)\n",
        r.cm_size,
        r.sub_iso_tests + r.probe_tests,
        r.test_speedup(),
        r.probe_tests,
    ));
    out.push_str(&format!(
        "cache: {} entries, policy {}, method {}\n",
        gc.len(),
        gc.policy_name(),
        gc.method_name()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_core::{CacheConfig, PolicyKind};
    use gc_method::{Dataset, SiMethod};
    use gc_workload::{extract_query, molecule_dataset, nested_chain};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn journey_renders_all_panels() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(40, 31)));
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig { capacity: 50, window_size: 1, ..CacheConfig::default() },
        )
        .unwrap();

        // Warm the cache with the ends of a ⊑-chain; the journey query is
        // the middle element, giving both a sub-case and a super-case hit
        // without an exact match.
        let mut rng = StdRng::seed_from_u64(3);
        let chain = nested_chain(dataset.graph(0), &[3, 6, 10], &mut rng);
        gc.query(&chain[0], QueryKind::Subgraph);
        gc.query(&chain[2], QueryKind::Subgraph);
        let j = run_query_journey(&mut gc, &chain[1], QueryKind::Subgraph);
        assert!(!j.report.exact_hit);
        for panel in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)", "(g)", "(h)", "speedup"] {
            assert!(j.rendering.contains(panel), "missing panel {panel}:\n{}", j.rendering);
        }
    }

    #[test]
    fn exact_hit_journey() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(10, 32)));
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            PolicyKind::Lru,
            CacheConfig { capacity: 10, window_size: 1, ..CacheConfig::default() },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let q = extract_query(dataset.graph(0), 5, &mut rng).unwrap();
        gc.query(&q, QueryKind::Subgraph);
        let j = run_query_journey(&mut gc, &q, QueryKind::Subgraph);
        assert!(j.report.exact_hit);
        assert!(j.rendering.contains("exact-match HIT"));
    }
}
