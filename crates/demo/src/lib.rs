//! # gc-demo — the GraphCache Demonstrator
//!
//! The paper's Demonstrator and Dashboard Manager subsystems (Fig. 1) are a
//! web UI; this crate reproduces their *quantitative* content as plain-text
//! dashboards (DESIGN.md §4):
//!
//! * [`journey`] — Scenario I, *The Query Journey* (Fig. 3): the anatomy of
//!   one query's trip through GC, panel by panel (`H`, `C_M`, `S`, `S'`,
//!   `C`, `R`, `A`) with the resulting speedup;
//! * [`workload_run`] — Scenario II, *The Workload Run* (Fig. 2(b,c)):
//!   execute a workload under every bundled replacement policy, track hits
//!   per query and evictions per policy, and render the comparison;
//! * [`ascii`] — small rendering toolkit (id grids, bar charts, tables)
//!   shared by the scenarios and the harness binaries.
//!
//! Everything renders to `String`, so the dashboards are testable and usable
//! from both examples and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod dashboard;
pub mod journey;
pub mod workload_run;

pub use dashboard::{developer_monitor, end_user_monitor, render_end_user_monitor, DeploymentInfo};
pub use journey::{run_query_journey, QueryJourney};
pub use workload_run::{
    run_multi_client, run_multi_client_persistent, run_workload_comparison, MultiClientRun,
    PolicyOutcome, WorkloadComparison,
};

/// Render a short id list like `39, 41, 43, …` capped at `max` items.
pub fn ascii_ids(ids: &[gc_core::EntryId], max: usize) -> String {
    let shown: Vec<String> = ids.iter().take(max).map(|i| i.to_string()).collect();
    let ellipsis = if ids.len() > max { ", …" } else { "" };
    format!("{}{}", shown.join(", "), ellipsis)
}
