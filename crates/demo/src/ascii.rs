//! Plain-text rendering toolkit.

use gc_graph::BitSet;

/// Render a universe of ids `0..n` as a grid, marking members of `set` with
/// `#` and non-members with `·` (the demo's dark-blue-bar figures, Fig. 3).
pub fn id_grid(set: &BitSet, per_row: usize) -> String {
    let n = set.universe();
    let per_row = per_row.max(1);
    let mut out = String::new();
    for row_start in (0..n).step_by(per_row) {
        out.push_str(&format!("{row_start:>4} "));
        for i in row_start..(row_start + per_row).min(n) {
            out.push(if set.contains(i) { '#' } else { '·' });
        }
        out.push('\n');
    }
    out
}

/// Horizontal bar chart: one row per `(label, value)`, scaled to `width`.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {value:.3}\n",
            "█".repeat(bar_len),
            " ".repeat(width.saturating_sub(bar_len)),
        ));
    }
    out
}

/// Fixed-width table with a header row and a separator.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{cell:<w$}  ", w = widths[i]));
        }
        line.trim_end().to_owned() + "\n"
    };
    out.push_str(&fmt_row(headers.iter().map(|s| s.to_string()).collect(), &widths));
    out.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols)));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Compact set rendering: `{1, 4, 7} (3)`.
pub fn set_summary(set: &BitSet, max_items: usize) -> String {
    let items = set.to_vec();
    let shown: Vec<String> = items.iter().take(max_items).map(|i| i.to_string()).collect();
    let ellipsis = if items.len() > max_items { ", …" } else { "" };
    format!("{{{}{}}} ({})", shown.join(", "), ellipsis, items.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_marks_members() {
        let s = BitSet::from_indices(12, [0usize, 5, 11]);
        let g = id_grid(&s, 6);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("#····#"));
        assert!(lines[1].ends_with("·····#"));
    }

    #[test]
    fn bars_scale() {
        let rows = vec![("a".to_owned(), 2.0), ("bb".to_owned(), 1.0)];
        let out = bar_chart(&rows, 10);
        assert!(out.contains("██████████"));
        assert!(out.contains("█████ "));
        assert!(out.contains("2.000"));
    }

    #[test]
    fn bars_handle_zero() {
        let rows = vec![("x".to_owned(), 0.0)];
        let out = bar_chart(&rows, 10);
        assert!(out.contains("0.000"));
    }

    #[test]
    fn tables_align() {
        let out = table(
            &["policy", "speedup"],
            &[vec!["LRU".into(), "1.2".into()], vec!["PINC".into(), "2.4".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[2].starts_with("LRU"));
    }

    #[test]
    fn set_summaries_truncate() {
        let s = BitSet::from_indices(100, 0..50usize);
        let txt = set_summary(&s, 3);
        assert!(txt.starts_with("{0, 1, 2, …}"));
        assert!(txt.ends_with("(50)"));
        let empty = BitSet::new(5);
        assert_eq!(set_summary(&empty, 3), "{} (0)");
    }
}
