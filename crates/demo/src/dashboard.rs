//! Dashboard Manager: the End-User Monitor and Developer Monitor.
//!
//! The paper's Dashboard Manager (Fig. 1) serves two audiences: end-users
//! get digested performance panels (Sub-Iso Testing, Query Time, Cache
//! Replacement); developers get introspection into the cache's internals.
//! Both render here as plain text from a live [`GraphCache`].

use crate::ascii;
use gc_core::{GlobalStats, GraphCache, SharedGraphCache};

/// Deployment facts the End-User Monitor renders alongside the
/// statistics — extracted so the panel can be drawn for any runtime
/// (sequential cache, shared cache, or a served cache whose stats carry
/// the serving gauges).
#[derive(Debug, Clone)]
pub struct DeploymentInfo {
    /// Base method name.
    pub method: String,
    /// Replacement policy name.
    pub policy: &'static str,
    /// Live cached entries.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Admission window size.
    pub window_size: usize,
    /// Cache memory footprint, bytes.
    pub memory_bytes: usize,
}

impl DeploymentInfo {
    /// Deployment facts of a sequential cache.
    pub fn of(gc: &GraphCache) -> Self {
        DeploymentInfo {
            method: gc.method_name(),
            policy: gc.policy_name(),
            entries: gc.len(),
            capacity: gc.config().capacity,
            window_size: gc.config().window_size,
            memory_bytes: gc.memory_bytes(),
        }
    }

    /// Deployment facts of a shared (concurrent) cache.
    pub fn of_shared(gc: &SharedGraphCache) -> Self {
        DeploymentInfo {
            method: gc.method_name(),
            policy: gc.policy_name(),
            entries: gc.len(),
            capacity: gc.config().capacity,
            window_size: gc.config().window_size,
            memory_bytes: gc.memory_bytes(),
        }
    }
}

/// End-User Monitor: the three Demonstrator panels (paper §2) — sub-iso
/// testing, query time, and cache replacement — from the cache's global
/// statistics.
pub fn end_user_monitor(gc: &GraphCache) -> String {
    render_end_user_monitor(&DeploymentInfo::of(gc), &gc.stats())
}

/// [`end_user_monitor`] for any stats snapshot: a served cache passes
/// stats with the serving gauges populated (see `gc_server`), which
/// lights up the serving line of the `[Index Health]` panel.
pub fn render_end_user_monitor(info: &DeploymentInfo, s: &GlobalStats) -> String {
    let mut out = String::new();
    out.push_str("=== End-User Monitor ===\n");
    out.push_str(&format!(
        "deployment: method {}, policy {}, {} / {} cache entries\n\n",
        info.method, info.policy, info.entries, info.capacity
    ));
    out.push_str("[Sub-Iso Testing]\n");
    out.push_str(&format!("  queries processed      : {}\n", s.queries));
    out.push_str(&format!(
        "  tests executed         : {} against data graphs, {} probing the cache\n",
        s.tests_executed, s.probe_tests
    ));
    out.push_str(&format!("  tests saved            : {}\n", s.tests_saved));
    out.push_str(&format!("  avg tests per query    : {:.2}\n\n", s.avg_tests_per_query()));
    out.push_str("[Query Time]\n");
    out.push_str(&format!(
        "  total / avg            : {:.1} ms / {:.3} ms\n\n",
        s.total_time.as_secs_f64() * 1e3,
        s.avg_time_per_query().as_secs_f64() * 1e3
    ));
    out.push_str("[Cache Replacement]\n");
    out.push_str(&format!(
        "  hit ratio              : {:.1}% ({} exact, {} sub-case, {} super-case hits)\n",
        100.0 * s.hit_ratio(),
        s.exact_hits,
        s.sub_hits,
        s.super_hits
    ));
    out.push_str(&format!(
        "  admitted / evicted     : {} / {} (window {}, {} rejected by admission)\n",
        s.admitted, s.evicted, info.window_size, s.admission_rejected
    ));
    out.push_str(&format!("  cache memory           : {} KiB\n\n", info.memory_bytes / 1024));
    out.push_str("[Index Health]\n");
    out.push_str(&format!("  distinct features      : {}\n", s.distinct_features));
    out.push_str(&format!(
        "  tombstoned slots       : {} ({:.1}% of directory; compacted lazily)\n",
        s.tombstoned_slots,
        100.0 * s.tombstone_ratio()
    ));
    out.push_str(&format!(
        "  kernel dispatch        : {} (bitset/merge hot loops)\n",
        s.kernel_dispatch
    ));
    out.push_str(&format!(
        "  pipeline latency       : p50 {} us, p99 {} us ({} traces sampled, {} slow)\n",
        s.pipeline_p50_us, s.pipeline_p99_us, s.traces_sampled, s.slow_queries
    ));
    if s.persist_health.is_empty() {
        out.push_str("  persistence            : detached (memory-only)\n");
    } else {
        out.push_str(&format!(
            "  persistence            : {} ({} persist errors, {} records buffered)\n",
            s.persist_health, s.persist_errors, s.journal_records_buffered
        ));
    }
    // Serving gauges are populated only when the stats come from a
    // `gc-server` front-end snapshot; a cache that is not being served
    // says so rather than rendering misleading zeros.
    if s.requests_total > 0 || s.uptime_secs > 0 {
        out.push_str(&format!(
            "  serving                : {} requests ({} shed, {} timed out), up {}s\n",
            s.requests_total, s.requests_shed, s.requests_timed_out, s.uptime_secs
        ));
    } else {
        out.push_str("  serving                : not serving (start with `gc serve`)\n");
    }
    out
}

/// Developer Monitor: per-entry utility table (the data the replacement
/// policies rank by), top `limit` entries by total hits.
pub fn developer_monitor(gc: &GraphCache, limit: usize) -> String {
    let mut entries: Vec<_> = gc.cache().iter().collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.stats.total_hits()));
    let rows: Vec<Vec<String>> = entries
        .iter()
        .take(limit)
        .map(|e| {
            vec![
                e.id.to_string(),
                e.kind.to_string(),
                format!("{}v/{}e", e.graph.vertex_count(), e.graph.edge_count()),
                e.answer.count().to_string(),
                e.stats.exact_hits.to_string(),
                e.stats.sub_hits.to_string(),
                e.stats.super_hits.to_string(),
                e.stats.tests_saved.to_string(),
                format!("{:.0}", e.stats.cost_saved),
                e.stats.last_used.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str("=== Developer Monitor: cached entries by utility ===\n");
    out.push_str(&ascii::table(
        &[
            "id",
            "kind",
            "size",
            "|A|",
            "exact",
            "sub",
            "super",
            "tests_saved",
            "cost_saved",
            "last_used",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "({} of {} entries shown; extend gc_core::ReplacementPolicy to rank them differently)\n",
        rows.len(),
        gc.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_core::{CacheConfig, PolicyKind};
    use gc_method::{Dataset, QueryKind, SiMethod};
    use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
    use std::sync::Arc;

    fn warmed() -> GraphCache {
        let dataset = Arc::new(Dataset::new(molecule_dataset(15, 21)));
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig { capacity: 8, window_size: 2, ..CacheConfig::default() },
        )
        .unwrap();
        let spec = WorkloadSpec {
            n_queries: 30,
            pool_size: 10,
            kind: WorkloadKind::Zipf { skew: 1.2 },
            seed: 4,
            ..WorkloadSpec::default()
        };
        for wq in &Workload::generate(dataset.graphs(), &spec).queries {
            gc.query(&wq.graph, QueryKind::Subgraph);
        }
        gc
    }

    #[test]
    fn end_user_panels_present() {
        let gc = warmed();
        let txt = end_user_monitor(&gc);
        for section in
            ["[Sub-Iso Testing]", "[Query Time]", "[Cache Replacement]", "[Index Health]"]
        {
            assert!(txt.contains(section), "missing {section}");
        }
        assert!(txt.contains("hit ratio"));
        assert!(txt.contains("distinct features"));
        assert!(txt.contains("tombstoned slots"));
        // No store attached in this fixture: the persistence gauge says so
        // instead of rendering an empty health string.
        assert!(txt.contains("persistence            : detached"), "{txt}");
        // The dispatch gauge must render a concrete tier, never the
        // delta-default empty string.
        assert!(
            txt.contains("kernel dispatch        : avx2")
                || txt.contains("kernel dispatch        : sse2")
                || txt.contains("kernel dispatch        : scalar"),
            "{txt}"
        );
        // Not served: the serving gauge line says so.
        assert!(txt.contains("serving                : not serving"), "{txt}");
        // Telemetry gauges: a warmed cache has pipeline percentiles.
        assert!(txt.contains("pipeline latency       : p50 "), "{txt}");
    }

    #[test]
    fn pipeline_latency_line_renders_telemetry_gauges() {
        let gc = warmed();
        let mut s = gc.stats();
        s.pipeline_p50_us = 128;
        s.pipeline_p99_us = 4096;
        s.traces_sampled = 3;
        s.slow_queries = 1;
        let txt = render_end_user_monitor(&DeploymentInfo::of(&gc), &s);
        assert!(
            txt.contains(
                "pipeline latency       : p50 128 us, p99 4096 us (3 traces sampled, 1 slow)"
            ),
            "{txt}"
        );
    }

    #[test]
    fn serving_gauges_render_when_populated() {
        let gc = warmed();
        let mut s = gc.stats();
        s.requests_total = 120;
        s.requests_shed = 7;
        s.requests_timed_out = 2;
        s.uptime_secs = 33;
        let txt = render_end_user_monitor(&DeploymentInfo::of(&gc), &s);
        assert!(
            txt.contains("serving                : 120 requests (7 shed, 2 timed out), up 33s"),
            "{txt}"
        );
    }

    #[test]
    fn persistence_gauge_renders_health_when_attached() {
        let mut gc = warmed();
        let dir = std::env::temp_dir().join(format!("gc_dashboard_persist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(gc_core::CacheStore::open(&dir).unwrap());
        gc.attach_store(store).unwrap();
        let txt = end_user_monitor(&gc);
        assert!(txt.contains("persistence            : healthy"), "{txt}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_health_gauges_track_the_live_index() {
        let gc = warmed();
        let s = gc.stats();
        let h = gc.index_health();
        assert_eq!(s.distinct_features, h.distinct_features as u64);
        assert_eq!(s.tombstoned_slots, h.tombstoned_slots as u64);
        assert!(h.distinct_features > 0, "a warmed cache indexes features");
    }

    #[test]
    fn developer_table_lists_entries() {
        let gc = warmed();
        let txt = developer_monitor(&gc, 5);
        assert!(txt.contains("tests_saved"));
        // Table rows bounded by limit.
        let data_lines =
            txt.lines().filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit())).count();
        assert!(data_lines <= 5);
        assert!(data_lines >= 1);
    }
}
