//! Scenario II: The Workload Run (paper §3.2, Fig. 2(b,c)).
//!
//! Runs the same workload through one GraphCache instance per replacement
//! policy (all over the same Method M), tracking per-query hit percentages
//! and which entries each policy evicts, then renders the side-by-side
//! comparison the demo shows — different policies evict different graphs,
//! with different resulting speedups.

use crate::ascii;
use gc_core::{CacheConfig, EntryId, GlobalStats, GraphCache, PolicyKind};
use gc_method::{execute_base, Dataset, Method};
use gc_workload::Workload;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one policy's run over the workload.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The policy.
    pub policy: PolicyKind,
    /// Final cache statistics.
    pub stats: GlobalStats,
    /// Entry ids evicted, in eviction order.
    pub evicted: Vec<EntryId>,
    /// Entry ids resident at the end.
    pub resident: Vec<EntryId>,
    /// Per-query cache-hit flags (for the hit-percentage timeline).
    pub hit_timeline: Vec<bool>,
    /// Per-query hit percentage: verified hits over cached entries at the
    /// time of the query (the demo's "number of cache-hits over the number
    /// of cached graphs").
    pub hit_pct_timeline: Vec<f64>,
    /// Speedup in average sub-iso tests vs the base method (probe tests
    /// charged to the cache).
    pub test_speedup: f64,
    /// Speedup in average query time vs the base method.
    pub time_speedup: f64,
}

/// The full comparison across policies.
#[derive(Debug, Clone)]
pub struct WorkloadComparison {
    /// One outcome per policy, in [`PolicyKind::all`] order.
    pub outcomes: Vec<PolicyOutcome>,
    /// Average sub-iso tests per query of the base method.
    pub base_avg_tests: f64,
    /// Average query time of the base method.
    pub base_avg_time: Duration,
}

/// Run `workload` under every bundled policy over caches built by
/// `make_method` (one fresh Method M per policy so indices are unshared),
/// and also through the base method alone for the speedup denominator.
pub fn run_workload_comparison(
    dataset: &Arc<Dataset>,
    make_method: &dyn Fn() -> Box<dyn Method>,
    config: &CacheConfig,
    workload: &Workload,
) -> WorkloadComparison {
    // Base method side (the speedup denominator... numerator in the paper's
    // ratio: speedup = base avg / GC avg).
    let base_method = make_method();
    let mut base_tests = 0u64;
    let mut base_time = Duration::ZERO;
    for wq in &workload.queries {
        let run = execute_base(dataset, base_method.as_ref(), config.engine, &wq.graph, wq.kind);
        base_tests += run.sub_iso_tests as u64;
        base_time += run.elapsed;
    }
    let n = workload.len().max(1) as f64;
    let base_avg_tests = base_tests as f64 / n;
    let base_avg_time = base_time.div_f64(n);

    let outcomes = PolicyKind::all()
        .into_iter()
        .map(|policy| {
            let mut gc = GraphCache::with_policy(
                dataset.clone(),
                make_method(),
                policy,
                config.clone(),
            )
            .expect("valid config");
            let mut evicted = Vec::new();
            let mut hit_timeline = Vec::with_capacity(workload.len());
            let mut hit_pct_timeline = Vec::with_capacity(workload.len());
            for wq in &workload.queries {
                let cached = gc.len().max(1);
                let r = gc.query(&wq.graph, wq.kind);
                evicted.extend(r.evicted.iter().copied());
                hit_timeline.push(r.any_hit());
                let hits = r.sub_hits.len() + r.super_hits.len() + usize::from(r.exact_hit);
                hit_pct_timeline.push(100.0 * hits as f64 / cached as f64);
            }
            let stats = gc.stats();
            let gc_avg_tests = stats.avg_tests_per_query();
            let gc_avg_time = stats.avg_time_per_query();
            PolicyOutcome {
                policy,
                evicted,
                resident: gc.cache().ids(),
                hit_timeline,
                hit_pct_timeline,
                test_speedup: if gc_avg_tests > 0.0 { base_avg_tests / gc_avg_tests } else { base_avg_tests },
                time_speedup: if gc_avg_time > Duration::ZERO {
                    base_avg_time.as_secs_f64() / gc_avg_time.as_secs_f64()
                } else {
                    f64::INFINITY
                },
                stats,
            }
        })
        .collect();

    WorkloadComparison { outcomes, base_avg_tests, base_avg_time }
}

impl WorkloadComparison {
    /// Render the Fig. 2(b,c)-style comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== The Workload Run: policy comparison ===\n");
        out.push_str(&format!(
            "base method: {:.2} sub-iso tests/query, {:.3} ms/query\n\n",
            self.base_avg_tests,
            self.base_avg_time.as_secs_f64() * 1e3
        ));
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.to_string(),
                    format!("{:.1}%", 100.0 * o.stats.hit_ratio()),
                    format!("{:.2}", o.stats.avg_tests_per_query()),
                    format!("{:.2}x", o.test_speedup),
                    format!("{:.2}x", o.time_speedup),
                    format!("{}", o.stats.evicted),
                    crate::ascii_ids(&o.evicted, 10),
                ]
            })
            .collect();
        out.push_str(&ascii::table(
            &["policy", "hit%", "tests/q", "test-speedup", "time-speedup", "#evicted", "evicted ids"],
            &rows,
        ));
        out.push('\n');
        let bars: Vec<(String, f64)> = self
            .outcomes
            .iter()
            .map(|o| (o.policy.to_string(), o.test_speedup))
            .collect();
        out.push_str("test-speedup by policy:\n");
        out.push_str(&ascii::bar_chart(&bars, 40));
        out
    }

    /// Sparkline-style rendering of one policy's hit-percentage timeline,
    /// bucketed into `buckets` workload phases (Scenario II: "upon each
    /// executed query, users can view sub/super case cache hit in
    /// percentage").
    pub fn render_timeline(&self, policy: PolicyKind, buckets: usize) -> String {
        let Some(o) = self.outcomes.iter().find(|o| o.policy == policy) else {
            return format!("no outcome for policy {policy}\n");
        };
        let n = o.hit_pct_timeline.len();
        if n == 0 || buckets == 0 {
            return String::new();
        }
        let per = n.div_ceil(buckets);
        let rows: Vec<(String, f64)> = o
            .hit_pct_timeline
            .chunks(per)
            .enumerate()
            .map(|(i, chunk)| {
                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                (format!("queries {:>4}-{:<4}", i * per + 1, i * per + chunk.len()), avg)
            })
            .collect();
        format!("hit % of cached entries over time ({policy}):\n{}", ascii::bar_chart(&rows, 30))
    }

    /// The best-performing policy by test speedup.
    pub fn winner(&self) -> PolicyKind {
        self.outcomes
            .iter()
            .max_by(|a, b| a.test_speedup.partial_cmp(&b.test_speedup).expect("no NaN"))
            .expect("non-empty outcomes")
            .policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_method::SiMethod;
    use gc_workload::{molecule_dataset, WorkloadKind, WorkloadSpec};

    #[test]
    fn comparison_covers_all_policies() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(15, 41)));
        let spec = WorkloadSpec {
            n_queries: 30,
            pool_size: 8,
            kind: WorkloadKind::Zipf { skew: 1.2 },
            seed: 5,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(dataset.graphs(), &spec);
        let cfg = CacheConfig { capacity: 6, window_size: 2, ..CacheConfig::default() };
        let cmp = run_workload_comparison(&dataset, &|| Box::new(SiMethod), &cfg, &w);
        assert_eq!(cmp.outcomes.len(), 5);
        for o in &cmp.outcomes {
            assert_eq!(o.hit_timeline.len(), 30);
            assert_eq!(o.stats.queries, 30);
        }
        let txt = cmp.render();
        for p in ["LRU", "POP", "PIN", "PINC", "HD"] {
            assert!(txt.contains(p), "missing {p} in rendering");
        }
        // Hits must exist on a skewed workload with a warm cache.
        assert!(cmp.outcomes.iter().any(|o| o.stats.hit_queries > 0));
        let _ = cmp.winner();
    }
}
