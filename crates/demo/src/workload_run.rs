//! Scenario II: The Workload Run (paper §3.2, Fig. 2(b,c)).
//!
//! Runs the same workload through one GraphCache instance per replacement
//! policy (all over the same Method M), tracking per-query hit percentages
//! and which entries each policy evicts, then renders the side-by-side
//! comparison the demo shows — different policies evict different graphs,
//! with different resulting speedups.
//!
//! Also hosts the **multi-client mode** ([`run_multi_client`]): the same
//! workload striped across N client threads hammering one
//! [`SharedGraphCache`], with optional per-answer verification against a
//! sequential replay — the demo surface of the concurrent front-end.

use crate::ascii;
use gc_core::{
    CacheConfig, CacheStore, EntryId, GlobalStats, GraphCache, PolicyKind, RecoveryReport,
    SharedGraphCache, SnapshotInfo,
};
use gc_method::{execute_base, Dataset, Method};
use gc_workload::Workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one policy's run over the workload.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// The policy.
    pub policy: PolicyKind,
    /// Final cache statistics.
    pub stats: GlobalStats,
    /// Entry ids evicted, in eviction order.
    pub evicted: Vec<EntryId>,
    /// Entry ids resident at the end.
    pub resident: Vec<EntryId>,
    /// Per-query cache-hit flags (for the hit-percentage timeline).
    pub hit_timeline: Vec<bool>,
    /// Per-query hit percentage: verified hits over cached entries at the
    /// time of the query (the demo's "number of cache-hits over the number
    /// of cached graphs").
    pub hit_pct_timeline: Vec<f64>,
    /// Speedup in average sub-iso tests vs the base method (probe tests
    /// charged to the cache).
    pub test_speedup: f64,
    /// Speedup in average query time vs the base method.
    pub time_speedup: f64,
}

/// The full comparison across policies.
#[derive(Debug, Clone)]
pub struct WorkloadComparison {
    /// One outcome per policy, in [`PolicyKind::all`] order.
    pub outcomes: Vec<PolicyOutcome>,
    /// Average sub-iso tests per query of the base method.
    pub base_avg_tests: f64,
    /// Average query time of the base method.
    pub base_avg_time: Duration,
}

/// Run `workload` under every bundled policy over caches built by
/// `make_method` (one fresh Method M per policy so indices are unshared),
/// and also through the base method alone for the speedup denominator.
pub fn run_workload_comparison(
    dataset: &Arc<Dataset>,
    make_method: &dyn Fn() -> Box<dyn Method>,
    config: &CacheConfig,
    workload: &Workload,
) -> WorkloadComparison {
    // Base method side (the speedup denominator... numerator in the paper's
    // ratio: speedup = base avg / GC avg).
    let base_method = make_method();
    let mut base_tests = 0u64;
    let mut base_time = Duration::ZERO;
    for wq in &workload.queries {
        let run = execute_base(dataset, base_method.as_ref(), config.engine, &wq.graph, wq.kind);
        base_tests += run.sub_iso_tests as u64;
        base_time += run.elapsed;
    }
    let n = workload.len().max(1) as f64;
    let base_avg_tests = base_tests as f64 / n;
    let base_avg_time = base_time.div_f64(n);

    let outcomes = PolicyKind::all()
        .into_iter()
        .map(|policy| {
            let mut gc =
                GraphCache::with_policy(dataset.clone(), make_method(), policy, config.clone())
                    .expect("valid config");
            let mut evicted = Vec::new();
            let mut hit_timeline = Vec::with_capacity(workload.len());
            let mut hit_pct_timeline = Vec::with_capacity(workload.len());
            for wq in &workload.queries {
                let cached = gc.len().max(1);
                let r = gc.query(&wq.graph, wq.kind);
                evicted.extend(r.evicted.iter().copied());
                hit_timeline.push(r.any_hit());
                let hits = r.sub_hits.len() + r.super_hits.len() + usize::from(r.exact_hit);
                hit_pct_timeline.push(100.0 * hits as f64 / cached as f64);
            }
            let stats = gc.stats();
            let gc_avg_tests = stats.avg_tests_per_query();
            let gc_avg_time = stats.avg_time_per_query();
            PolicyOutcome {
                policy,
                evicted,
                resident: gc.cache().ids(),
                hit_timeline,
                hit_pct_timeline,
                test_speedup: if gc_avg_tests > 0.0 {
                    base_avg_tests / gc_avg_tests
                } else {
                    base_avg_tests
                },
                time_speedup: if gc_avg_time > Duration::ZERO {
                    base_avg_time.as_secs_f64() / gc_avg_time.as_secs_f64()
                } else {
                    f64::INFINITY
                },
                stats,
            }
        })
        .collect();

    WorkloadComparison { outcomes, base_avg_tests, base_avg_time }
}

impl WorkloadComparison {
    /// Render the Fig. 2(b,c)-style comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== The Workload Run: policy comparison ===\n");
        out.push_str(&format!(
            "base method: {:.2} sub-iso tests/query, {:.3} ms/query\n\n",
            self.base_avg_tests,
            self.base_avg_time.as_secs_f64() * 1e3
        ));
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.to_string(),
                    format!("{:.1}%", 100.0 * o.stats.hit_ratio()),
                    format!("{:.2}", o.stats.avg_tests_per_query()),
                    format!("{:.2}x", o.test_speedup),
                    format!("{:.2}x", o.time_speedup),
                    format!("{}", o.stats.evicted),
                    crate::ascii_ids(&o.evicted, 10),
                ]
            })
            .collect();
        out.push_str(&ascii::table(
            &[
                "policy",
                "hit%",
                "tests/q",
                "test-speedup",
                "time-speedup",
                "#evicted",
                "evicted ids",
            ],
            &rows,
        ));
        out.push('\n');
        let bars: Vec<(String, f64)> =
            self.outcomes.iter().map(|o| (o.policy.to_string(), o.test_speedup)).collect();
        out.push_str("test-speedup by policy:\n");
        out.push_str(&ascii::bar_chart(&bars, 40));
        out
    }

    /// Sparkline-style rendering of one policy's hit-percentage timeline,
    /// bucketed into `buckets` workload phases (Scenario II: "upon each
    /// executed query, users can view sub/super case cache hit in
    /// percentage").
    pub fn render_timeline(&self, policy: PolicyKind, buckets: usize) -> String {
        let Some(o) = self.outcomes.iter().find(|o| o.policy == policy) else {
            return format!("no outcome for policy {policy}\n");
        };
        let n = o.hit_pct_timeline.len();
        if n == 0 || buckets == 0 {
            return String::new();
        }
        let per = n.div_ceil(buckets);
        let rows: Vec<(String, f64)> = o
            .hit_pct_timeline
            .chunks(per)
            .enumerate()
            .map(|(i, chunk)| {
                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                (format!("queries {:>4}-{:<4}", i * per + 1, i * per + chunk.len()), avg)
            })
            .collect();
        format!("hit % of cached entries over time ({policy}):\n{}", ascii::bar_chart(&rows, 30))
    }

    /// The best-performing policy by test speedup.
    pub fn winner(&self) -> PolicyKind {
        self.outcomes
            .iter()
            .max_by(|a, b| a.test_speedup.partial_cmp(&b.test_speedup).expect("no NaN"))
            .expect("non-empty outcomes")
            .policy
    }
}

// ---------------------------------------------------------------------------
// Multi-client mode
// ---------------------------------------------------------------------------

/// Outcome of running a workload through one [`SharedGraphCache`] from N
/// concurrent client threads.
#[derive(Debug, Clone)]
pub struct MultiClientRun {
    /// Client thread count.
    pub clients: usize,
    /// Replacement policy used.
    pub policy: PolicyKind,
    /// Total queries served (across all clients).
    pub queries: usize,
    /// Wall-clock time from first to last query.
    pub elapsed: Duration,
    /// Served queries per second of wall-clock time.
    pub throughput_qps: f64,
    /// Final cache statistics.
    pub stats: GlobalStats,
    /// Answers that differed from the sequential replay (always 0; counted
    /// only when verification was requested).
    pub mismatches: usize,
    /// Whether answers were verified against a sequential [`GraphCache`]
    /// replay of the same workload.
    pub verified: bool,
}

/// Run `workload` through one [`SharedGraphCache`] from `clients` threads
/// (queries striped round-robin), measuring throughput.
///
/// With `verify_answers`, the same workload is first replayed through a
/// sequential [`GraphCache`] over an identically-built Method M, and every
/// concurrent answer is compared bit-for-bit (paper §1 Problem (2): the
/// shared front-end may not introduce false positives/negatives).
pub fn run_multi_client(
    dataset: &Arc<Dataset>,
    make_method: &dyn Fn() -> Box<dyn Method>,
    policy: PolicyKind,
    config: &CacheConfig,
    workload: &Workload,
    clients: usize,
    verify_answers: bool,
) -> MultiClientRun {
    let clients = clients.max(1);
    let expected: Vec<gc_graph::BitSet> = if verify_answers {
        let mut seq =
            GraphCache::with_policy(dataset.clone(), make_method(), policy, config.clone())
                .expect("valid config");
        workload.queries.iter().map(|wq| seq.query(&wq.graph, wq.kind).answer).collect()
    } else {
        Vec::new()
    };

    let gc = SharedGraphCache::with_policy(dataset.clone(), make_method(), policy, config.clone())
        .expect("valid config");
    drive_clients(&gc, policy, workload, clients, verify_answers, &expected)
}

/// [`run_multi_client`] with persistence threaded through: the shared
/// cache is warm-restarted from `store` (snapshot + journal replay, each
/// entry re-routed to its home shard), the workload runs as usual with the
/// session journaled, and a closing snapshot is rotated in. Returns the
/// run, the recovery report, and the closing snapshot's info.
#[allow(clippy::too_many_arguments)] // run_multi_client's surface + the store
pub fn run_multi_client_persistent(
    dataset: &Arc<Dataset>,
    make_method: &dyn Fn() -> Box<dyn Method>,
    policy: PolicyKind,
    config: &CacheConfig,
    workload: &Workload,
    clients: usize,
    verify_answers: bool,
    store: Arc<CacheStore>,
) -> Result<(MultiClientRun, RecoveryReport, SnapshotInfo), String> {
    let clients = clients.max(1);
    let expected: Vec<gc_graph::BitSet> = if verify_answers {
        let mut seq =
            GraphCache::with_policy(dataset.clone(), make_method(), policy, config.clone())
                .expect("valid config");
        workload.queries.iter().map(|wq| seq.query(&wq.graph, wq.kind).answer).collect()
    } else {
        Vec::new()
    };

    let (gc, recovery) = SharedGraphCache::restore_from(
        dataset.clone(),
        Arc::from(make_method()),
        || policy.make(),
        config.clone(),
        store,
    )?;
    let run = drive_clients(&gc, policy, workload, clients, verify_answers, &expected);
    let info =
        gc.snapshot_now()?.expect("store is attached and no other thread snapshots this cache");
    Ok((run, recovery, info))
}

/// Stripe `workload` round-robin over `clients` threads against `gc`,
/// counting answers that differ from `expected` (when verifying).
fn drive_clients(
    gc: &SharedGraphCache,
    policy: PolicyKind,
    workload: &Workload,
    clients: usize,
    verify_answers: bool,
    expected: &[gc_graph::BitSet],
) -> MultiClientRun {
    let start = Instant::now();
    let mismatches: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                scope.spawn(move || {
                    let mut bad = 0usize;
                    for (i, wq) in workload.queries.iter().enumerate() {
                        if i % clients != t {
                            continue;
                        }
                        let report = gc.query(&wq.graph, wq.kind);
                        if verify_answers && report.answer != expected[i] {
                            bad += 1;
                        }
                    }
                    bad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).sum()
    });
    let elapsed = start.elapsed();
    let queries = workload.len();
    MultiClientRun {
        clients,
        policy,
        queries,
        elapsed,
        throughput_qps: queries as f64 / elapsed.as_secs_f64().max(1e-9),
        stats: gc.stats(),
        mismatches,
        verified: verify_answers,
    }
}

impl MultiClientRun {
    /// Render the multi-client summary panel.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Multi-client run: {} clients over one SharedGraphCache ({}) ===\n",
            self.clients, self.policy
        ));
        out.push_str(&ascii::table(
            &["clients", "queries", "wall time", "throughput", "hit%", "tests/q", "evicted"],
            &[vec![
                self.clients.to_string(),
                self.queries.to_string(),
                format!("{:.3} s", self.elapsed.as_secs_f64()),
                format!("{:.0} q/s", self.throughput_qps),
                format!("{:.1}%", 100.0 * self.stats.hit_ratio()),
                format!("{:.2}", self.stats.avg_tests_per_query()),
                self.stats.evicted.to_string(),
            ]],
        ));
        if self.verified {
            out.push_str(&format!(
                "answers vs sequential replay: {}\n",
                if self.mismatches == 0 {
                    "identical (bit-for-bit)".to_string()
                } else {
                    format!("{} MISMATCHES", self.mismatches)
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_method::SiMethod;
    use gc_workload::{molecule_dataset, WorkloadKind, WorkloadSpec};

    #[test]
    fn multi_client_matches_sequential_answers() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(12, 77)));
        let spec = WorkloadSpec {
            n_queries: 40,
            pool_size: 10,
            kind: WorkloadKind::Zipf { skew: 1.1 },
            seed: 3,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(dataset.graphs(), &spec);
        let cfg = CacheConfig { capacity: 8, window_size: 2, ..CacheConfig::default() };
        let run =
            run_multi_client(&dataset, &|| Box::new(SiMethod), PolicyKind::Hd, &cfg, &w, 4, true);
        assert_eq!(run.mismatches, 0, "shared answers must equal sequential replay");
        assert_eq!(run.stats.queries, 40);
        assert_eq!(run.queries, 40);
        assert!(run.throughput_qps > 0.0);
        let txt = run.render();
        assert!(txt.contains("identical"), "{txt}");
        assert!(txt.contains("4"));
    }

    #[test]
    fn multi_client_persists_and_warm_restarts() {
        let dir = std::env::temp_dir()
            .join(format!("gc_demo_multiclient_persist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = Arc::new(Dataset::new(molecule_dataset(12, 77)));
        let spec = WorkloadSpec {
            n_queries: 40,
            pool_size: 10,
            kind: WorkloadKind::Zipf { skew: 1.1 },
            seed: 3,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(dataset.graphs(), &spec);
        let cfg = CacheConfig {
            capacity: 8,
            window_size: 2,
            shards: 4,
            threads: 4,
            min_admit_tests: 0,
            ..CacheConfig::default()
        };

        let store = Arc::new(CacheStore::open(&dir).expect("open store"));
        let (run, recovery, info) = run_multi_client_persistent(
            &dataset,
            &|| Box::new(SiMethod),
            PolicyKind::Hd,
            &cfg,
            &w,
            4,
            true,
            store,
        )
        .expect("persistent run");
        assert_eq!(run.mismatches, 0);
        assert!(!recovery.warm, "first run starts cold");
        assert!(info.entries > 0, "warm cache must snapshot entries");

        // Second session over the same dir restores those entries.
        let store = Arc::new(CacheStore::open(&dir).expect("reopen store"));
        let (run2, recovery2, _info2) = run_multi_client_persistent(
            &dataset,
            &|| Box::new(SiMethod),
            PolicyKind::Hd,
            &cfg,
            &w,
            2,
            true,
            store,
        )
        .expect("warm restart run");
        assert_eq!(run2.mismatches, 0);
        assert!(recovery2.warm, "second run must warm-restart");
        assert_eq!(recovery2.snapshot_entries, info.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn comparison_covers_all_policies() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(15, 41)));
        let spec = WorkloadSpec {
            n_queries: 30,
            pool_size: 8,
            kind: WorkloadKind::Zipf { skew: 1.2 },
            seed: 5,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(dataset.graphs(), &spec);
        let cfg = CacheConfig { capacity: 6, window_size: 2, ..CacheConfig::default() };
        let cmp = run_workload_comparison(&dataset, &|| Box::new(SiMethod), &cfg, &w);
        assert_eq!(cmp.outcomes.len(), 5);
        for o in &cmp.outcomes {
            assert_eq!(o.hit_timeline.len(), 30);
            assert_eq!(o.stats.queries, 30);
        }
        let txt = cmp.render();
        for p in ["LRU", "POP", "PIN", "PINC", "HD"] {
            assert!(txt.contains(p), "missing {p} in rendering");
        }
        // Hits must exist on a skewed workload with a warm cache.
        assert!(cmp.outcomes.iter().any(|o| o.stats.hit_queries > 0));
        let _ = cmp.winner();
    }
}
