//! Deterministic fault injection for durability testing.
//!
//! A [`FaultPlan`] is a set of armed [`Failpoint`]s, one queue per
//! [`FaultSite`]. Production code consults the plan (if one is installed)
//! at each instrumented I/O site via [`FaultPlan::on_op`] and acts on the
//! returned [`FaultAction`] — returning an injected error, writing a
//! deliberately short or torn prefix, sleeping, or panicking. With no plan
//! installed every site is a no-op, so the instrumentation costs one
//! mutex-guarded `Option` clone per I/O call on the cold persistence path
//! and nothing on the query hot path.
//!
//! Plans are seedable ([`FaultPlan::seeded`]): the chaos harness derives
//! every "random" choice (which op to kill, where to cut a record) from
//! the plan's own xorshift stream, so a failing run replays exactly from
//! its seed.
//!
//! Only the *front* failpoint of a site's queue is active at a time; when
//! a one-shot point fires it is popped and the next becomes active.
//! Persistent points ([`Failpoint::ErrAfter`], [`Failpoint::SlowIo`]) stay
//! active until [`FaultPlan::clear`]ed.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// An instrumented operation class a failpoint can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Staging the snapshot temp file during rotation (create+write+fsync).
    SnapshotWrite,
    /// Creating the new generation's journal and writing its header.
    JournalCreate,
    /// Appending a record batch to the active journal.
    JournalAppend,
    /// Fsyncing the active journal (explicit `sync` or group commit).
    JournalSync,
    /// Directory fsyncs inside rotation.
    DirSync,
    /// The atomic snapshot rename (the rotation commit point).
    Rename,
    /// A worker-pool task in `gc-core` (verify chunk / shard probe) —
    /// consulted by the pool's task wrapper, not by the store.
    Task,
}

impl FaultSite {
    /// Stable lowercase name (for logs and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SnapshotWrite => "snapshot_write",
            FaultSite::JournalCreate => "journal_create",
            FaultSite::JournalAppend => "journal_append",
            FaultSite::JournalSync => "journal_sync",
            FaultSite::DirSync => "dir_sync",
            FaultSite::Rename => "rename",
            FaultSite::Task => "task",
        }
    }
}

/// One armed failure behavior.
#[derive(Debug, Clone, Copy)]
pub enum Failpoint {
    /// Fail the next op at this site, then disarm.
    ErrOnce,
    /// Let `n` ops through, then fail **every** subsequent op until the
    /// site is [`FaultPlan::clear`]ed — models a store that stays down.
    ErrAfter {
        /// Ops to let through before failing.
        n: u64,
    },
    /// Write only the first `keep` bytes of the next write, then fail —
    /// models a partial write cut by a crash. Disarms after firing.
    ShortWrite {
        /// Bytes of the attempted write that reach the file.
        keep: usize,
    },
    /// Cut the next journal append strictly inside its final record (a
    /// torn frame), then fail. Disarms after firing.
    TornRecord,
    /// Delay every op at this site by `millis` until cleared — models a
    /// saturated disk. Never fails the op.
    SlowIo {
        /// Injected latency per op.
        millis: u64,
    },
    /// Let `n` ops through, then panic on the next one. Disarms after
    /// firing (the panic is expected to be confined by `catch_unwind`).
    PanicAt {
        /// Ops to let through before panicking.
        n: u64,
    },
}

impl Failpoint {
    fn name(self) -> &'static str {
        match self {
            Failpoint::ErrOnce => "err_once",
            Failpoint::ErrAfter { .. } => "err_after",
            Failpoint::ShortWrite { .. } => "short_write",
            Failpoint::TornRecord => "torn_record",
            Failpoint::SlowIo { .. } => "slow_io",
            Failpoint::PanicAt { .. } => "panic_at",
        }
    }
}

/// What the instrumented call site must do for the current op.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// No fault: perform the op normally.
    Proceed,
    /// Fail the op with this injected error message (nothing written).
    Error(String),
    /// Write only the first `keep` bytes, then fail the op.
    ShortWrite {
        /// Bytes to actually write before failing.
        keep: usize,
    },
    /// Cut the write strictly inside its final record, then fail the op.
    TornRecord,
    /// Panic at the call site (the site's message names the injection).
    Panic,
}

struct Armed {
    point: Failpoint,
    /// Ops seen by this failpoint while it sat at the front of its queue
    /// (drives `ErrAfter`/`PanicAt` countdowns).
    seen: u64,
}

struct PlanInner {
    sites: HashMap<FaultSite, VecDeque<Armed>>,
    fired: Vec<(FaultSite, &'static str)>,
    rng: u64,
}

/// A deterministic, seedable schedule of failpoints.
///
/// Shared via `Arc` between the test/harness (which arms points and reads
/// the fired log) and the instrumented code (which calls
/// [`FaultPlan::on_op`]). All methods take `&self`.
pub struct FaultPlan {
    inner: Mutex<PlanInner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("fault plan lock");
        f.debug_struct("FaultPlan")
            .field("armed_sites", &inner.sites.len())
            .field("fired", &inner.fired.len())
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// An empty plan (seed 1).
    pub fn new() -> Self {
        Self::seeded(1)
    }

    /// An empty plan whose [`FaultPlan::next_u64`] stream derives from
    /// `seed` — the chaos harness's only randomness source.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            inner: Mutex::new(PlanInner {
                sites: HashMap::new(),
                fired: Vec::new(),
                // xorshift needs a nonzero state; the constant keeps
                // distinct small seeds distinct and maps seed 0 somewhere
                // useful.
                rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Arm `point` at `site`, behind any already-armed points there.
    pub fn arm(&self, site: FaultSite, point: Failpoint) {
        let mut inner = self.inner.lock().expect("fault plan lock");
        inner.sites.entry(site).or_default().push_back(Armed { point, seen: 0 });
    }

    /// Disarm everything at `site` (including persistent points).
    pub fn clear(&self, site: FaultSite) {
        self.inner.lock().expect("fault plan lock").sites.remove(&site);
    }

    /// Disarm every site.
    pub fn clear_all(&self) {
        self.inner.lock().expect("fault plan lock").sites.clear();
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.inner.lock().expect("fault plan lock").fired.len()
    }

    /// The (site, failpoint-name) log of every fired fault, in order.
    pub fn fired_log(&self) -> Vec<(FaultSite, &'static str)> {
        self.inner.lock().expect("fault plan lock").fired.clone()
    }

    /// Next value of the plan's deterministic xorshift64 stream.
    pub fn next_u64(&self) -> u64 {
        let mut inner = self.inner.lock().expect("fault plan lock");
        let mut x = inner.rng;
        if x == 0 {
            x = 0x2545_F491_4F6C_DD1D;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        inner.rng = x;
        x
    }

    /// Consult the plan for one op at `site`. [`Failpoint::SlowIo`] sleeps
    /// here (outside the plan lock) and reports [`FaultAction::Proceed`];
    /// every other firing is returned for the call site to act on.
    pub fn on_op(&self, site: FaultSite) -> FaultAction {
        let mut sleep_ms = None;
        let action = {
            let mut inner = self.inner.lock().expect("fault plan lock");
            let Some(queue) = inner.sites.get_mut(&site) else {
                return FaultAction::Proceed;
            };
            let Some(front) = queue.front_mut() else {
                return FaultAction::Proceed;
            };
            let point = front.point;
            let mut pop = false;
            let action = match point {
                Failpoint::ErrOnce => {
                    pop = true;
                    FaultAction::Error(format!("injected error at {}", site.name()))
                }
                Failpoint::ErrAfter { n } => {
                    if front.seen < n {
                        front.seen += 1;
                        FaultAction::Proceed
                    } else {
                        FaultAction::Error(format!("injected persistent error at {}", site.name()))
                    }
                }
                Failpoint::ShortWrite { keep } => {
                    pop = true;
                    FaultAction::ShortWrite { keep }
                }
                Failpoint::TornRecord => {
                    pop = true;
                    FaultAction::TornRecord
                }
                Failpoint::SlowIo { millis } => {
                    sleep_ms = Some(millis);
                    FaultAction::Proceed
                }
                Failpoint::PanicAt { n } => {
                    if front.seen < n {
                        front.seen += 1;
                        FaultAction::Proceed
                    } else {
                        pop = true;
                        FaultAction::Panic
                    }
                }
            };
            let fires = !matches!(action, FaultAction::Proceed) || sleep_ms.is_some();
            if fires {
                inner.fired.push((site, point.name()));
            }
            if pop {
                let queue = inner.sites.get_mut(&site).expect("site queue");
                queue.pop_front();
                if queue.is_empty() {
                    inner.sites.remove(&site);
                }
            }
            action
        };
        if let Some(ms) = sleep_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let plan = FaultPlan::new();
        for _ in 0..10 {
            assert!(matches!(plan.on_op(FaultSite::JournalAppend), FaultAction::Proceed));
        }
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn err_once_fires_once_then_disarms() {
        let plan = FaultPlan::new();
        plan.arm(FaultSite::JournalAppend, Failpoint::ErrOnce);
        assert!(matches!(plan.on_op(FaultSite::JournalAppend), FaultAction::Error(_)));
        assert!(matches!(plan.on_op(FaultSite::JournalAppend), FaultAction::Proceed));
        // Other sites are untouched.
        assert!(matches!(plan.on_op(FaultSite::JournalSync), FaultAction::Proceed));
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn err_after_is_persistent_until_cleared() {
        let plan = FaultPlan::new();
        plan.arm(FaultSite::SnapshotWrite, Failpoint::ErrAfter { n: 2 });
        assert!(matches!(plan.on_op(FaultSite::SnapshotWrite), FaultAction::Proceed));
        assert!(matches!(plan.on_op(FaultSite::SnapshotWrite), FaultAction::Proceed));
        for _ in 0..5 {
            assert!(matches!(plan.on_op(FaultSite::SnapshotWrite), FaultAction::Error(_)));
        }
        plan.clear(FaultSite::SnapshotWrite);
        assert!(matches!(plan.on_op(FaultSite::SnapshotWrite), FaultAction::Proceed));
    }

    #[test]
    fn queued_points_fire_in_order() {
        let plan = FaultPlan::new();
        plan.arm(FaultSite::JournalAppend, Failpoint::ShortWrite { keep: 3 });
        plan.arm(FaultSite::JournalAppend, Failpoint::TornRecord);
        assert!(matches!(
            plan.on_op(FaultSite::JournalAppend),
            FaultAction::ShortWrite { keep: 3 }
        ));
        assert!(matches!(plan.on_op(FaultSite::JournalAppend), FaultAction::TornRecord));
        assert!(matches!(plan.on_op(FaultSite::JournalAppend), FaultAction::Proceed));
        assert_eq!(
            plan.fired_log(),
            vec![
                (FaultSite::JournalAppend, "short_write"),
                (FaultSite::JournalAppend, "torn_record"),
            ]
        );
    }

    #[test]
    fn panic_at_counts_down() {
        let plan = FaultPlan::new();
        plan.arm(FaultSite::Task, Failpoint::PanicAt { n: 2 });
        assert!(matches!(plan.on_op(FaultSite::Task), FaultAction::Proceed));
        assert!(matches!(plan.on_op(FaultSite::Task), FaultAction::Proceed));
        assert!(matches!(plan.on_op(FaultSite::Task), FaultAction::Panic));
        assert!(matches!(plan.on_op(FaultSite::Task), FaultAction::Proceed));
    }

    #[test]
    fn seeded_stream_is_deterministic() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
