//! # gc-store — durable cache state for GraphCache
//!
//! GraphCache's value is *accumulated* state: hit ratios and the
//! window/utility replacement signals only pay off once the cache is warm,
//! yet a process restart used to throw all of it away and re-pay the
//! cold-start subgraph-isomorphism tax. This crate makes that state outlive
//! the process:
//!
//! * [`snapshot`] — a versioned, checksummed, self-contained binary image
//!   of the cache: entries (query graph, kind, exact answer set, base
//!   costs, accumulated statistics), global statistics, the learned
//!   cost-model estimates, and window/clock state;
//! * [`journal`] — an append-only admission/eviction log between
//!   snapshots, each record length-prefixed and CRC-guarded;
//! * [`store`] — the [`CacheStore`] directory pairing one snapshot with
//!   its journal, with crash-safe atomic rotation.
//!
//! A restarted cache replays *snapshot then journal* and resumes with its
//! warm hit ratio — no admitted query is ever re-executed or re-verified.
//!
//! ## What is deliberately not persisted
//!
//! Feature vectors, verification profiles, WL fingerprints and the
//! containment indexes are all recomputed from the restored entries through
//! the cache's normal insert paths. That keeps the on-disk format decoupled
//! from the in-memory index layout: index redesigns (flat postings, arena
//! tries, tombstoned directories, …) never invalidate snapshots.
//!
//! ## Fail-closed recovery
//!
//! Corrupt, truncated and torn-write inputs are *detected* (checksums +
//! length-prefixed framing) and degrade to a cold start — never to a wrong
//! answer. The one tolerated anomaly is an incomplete trailing journal
//! frame (exactly what a crash mid-append leaves): recovery drops the torn
//! tail and keeps the intact prefix. The kernel's central invariant
//! (answers exactly equal Method M alone) is preserved by construction:
//! every persisted entry is a previously verified exact answer set, and
//! anything that fails validation is discarded wholesale.
//!
//! ## Durability and fault testing
//!
//! [`FsyncPolicy`] adds group-commit fsync with a documented bounded-loss
//! guarantee, [`faults`] provides the deterministic failpoint layer
//! threaded through every store I/O site (and `gc-core`'s worker pool),
//! and [`doctor`] is the forensic walk behind the `gc doctor` CLI.
//!
//! This crate depends only on `gc-graph` and `gc-method` (graph and
//! query-kind types); the kernel wiring — `GraphCache::{snapshot_to,
//! restore_from}`, journal hooks in admit/evict, the periodic snapshotter
//! for `SharedGraphCache` — lives in `gc-core::persist`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doctor;
pub mod faults;
pub mod journal;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use doctor::{inspect_dir, DoctorReport, RestoreVerdict};
pub use faults::{Failpoint, FaultAction, FaultPlan, FaultSite};
pub use journal::{JournalHeader, JournalOp, JournalRecord};
pub use snapshot::{EntryRecord, EntryStatsRecord, SnapshotDoc, FORMAT_VERSION};
pub use store::{CacheStore, FsyncPolicy, LoadOutcome, RecoveredState, SnapshotInfo};
pub use wire::{crc64, WireError};
