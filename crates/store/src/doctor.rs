//! Forensic validation of a persistence directory — the backend of the
//! `gc doctor <dir>` CLI.
//!
//! [`inspect_dir`] walks a [`crate::CacheStore`] directory without opening
//! it as a store: it validates the snapshot (full CRC + decode), every
//! journal file it finds (header chain, per-record CRC walk, torn-tail
//! measurement), checks the generation chain between snapshot and
//! journals, and reports what [`crate::CacheStore::load`] would recover.
//!
//! The verdict distinguishes *benign* states (fresh directory, stale
//! journal left by an interrupted rotation, a torn tail from a crash
//! mid-append — all survivable by design) from *corruption* (checksum or
//! framing damage in the files a restore depends on).

use crate::journal::{decode_journal_tolerant, JournalRecord};
use crate::snapshot::decode_snapshot;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Validation result for `snapshot.gcs`.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotFileReport {
    /// File size on disk.
    pub bytes: u64,
    /// Generation the snapshot commits (if it decoded).
    pub generation: Option<u64>,
    /// Entries it would restore.
    pub entries: usize,
    /// Logical clock captured at rotation.
    pub clock: u64,
    /// Why validation failed, if it did.
    pub error: Option<String>,
}

/// Validation result for one `journal-<gen>.gcj` file.
#[derive(Debug, Clone, Serialize)]
pub struct JournalFileReport {
    /// File name (`journal-<gen>.gcj`).
    pub name: String,
    /// File size on disk.
    pub bytes: u64,
    /// Generation from the file name.
    pub name_generation: u64,
    /// Generation from the decoded header (must match the name).
    pub header_generation: Option<u64>,
    /// Complete, checksum-valid records.
    pub records: usize,
    /// Admissions among them.
    pub admits: usize,
    /// Evictions among them.
    pub evicts: usize,
    /// Dataset deltas (insert/remove mutations) among them.
    pub deltas: usize,
    /// Bytes of an incomplete trailing frame (crash mid-append).
    pub torn_tail_bytes: usize,
    /// True when this journal does not pair with the snapshot's
    /// generation (a leftover from an interrupted rotation — ignored by
    /// restore, harmless).
    pub stale: bool,
    /// Why validation failed, if it did.
    pub error: Option<String>,
}

/// What a restore from this directory would do.
#[derive(Debug, Clone, Serialize)]
pub enum RestoreVerdict {
    /// Nothing usable on disk, benignly: a fresh directory or an
    /// interrupted first rotation. Restore starts cold by design.
    ColdBenign {
        /// What makes the directory cold.
        reason: String,
    },
    /// A valid pair: restore resumes warm.
    Warm {
        /// Generation of the pair.
        generation: u64,
        /// Entries restored from the snapshot.
        entries: usize,
        /// Journal records replayed on top.
        journal_records: usize,
        /// Torn trailing bytes dropped during replay (0 = clean).
        torn_tail_bytes: usize,
    },
    /// A file a restore depends on exists but fails validation: restore
    /// falls back to cold because of *damage*, not by design.
    Corrupt {
        /// The validation failure.
        reason: String,
    },
}

/// Everything [`inspect_dir`] learned about a persistence directory.
#[derive(Debug, Clone, Serialize)]
pub struct DoctorReport {
    /// Snapshot validation (`None` = no `snapshot.gcs` present).
    pub snapshot: Option<SnapshotFileReport>,
    /// Every journal file found, sorted by generation.
    pub journals: Vec<JournalFileReport>,
    /// What a restore would do.
    pub verdict: RestoreVerdict,
}

impl DoctorReport {
    /// True when the directory is healthy (warm or benignly cold).
    pub fn healthy(&self) -> bool {
        !matches!(self.verdict, RestoreVerdict::Corrupt { .. })
    }

    /// Multi-line human-readable rendering (what `gc doctor` prints).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        match &self.snapshot {
            None => out.push_str("snapshot.gcs        : absent\n"),
            Some(s) => match (&s.error, s.generation) {
                (Some(e), _) => out.push_str(&format!(
                    "snapshot.gcs        : INVALID — {e} ({} bytes)\n",
                    s.bytes
                )),
                (None, g) => out.push_str(&format!(
                    "snapshot.gcs        : ok — generation {}, {} entries, clock {}, {} bytes\n",
                    g.unwrap_or(0),
                    s.entries,
                    s.clock,
                    s.bytes
                )),
            },
        }
        for j in &self.journals {
            let status = match &j.error {
                Some(e) => format!("INVALID — {e}"),
                None => {
                    let mut s = format!(
                        "ok — {} records ({} admits, {} evicts, {} deltas)",
                        j.records, j.admits, j.evicts, j.deltas
                    );
                    if j.torn_tail_bytes > 0 {
                        s.push_str(&format!(", torn tail {} bytes", j.torn_tail_bytes));
                    }
                    if j.stale {
                        s.push_str(", stale (ignored by restore)");
                    }
                    s
                }
            };
            out.push_str(&format!("{:<20}: {status}, {} bytes\n", j.name, j.bytes));
        }
        match &self.verdict {
            RestoreVerdict::ColdBenign { reason } => {
                out.push_str(&format!("restore             : cold start (benign): {reason}\n"))
            }
            RestoreVerdict::Warm { generation, entries, journal_records, torn_tail_bytes } => {
                out.push_str(&format!(
                    "restore             : warm — generation {generation}, {entries} entries + {journal_records} journal records",
                ));
                if *torn_tail_bytes > 0 {
                    out.push_str(&format!(" (dropping a {torn_tail_bytes}-byte torn tail)"));
                }
                out.push('\n');
            }
            RestoreVerdict::Corrupt { reason } => out.push_str(&format!(
                "restore             : CORRUPT — cold start forced: {reason}\n"
            )),
        }
        out
    }
}

fn inspect_journal(path: &Path, name: &str, name_generation: u64) -> JournalFileReport {
    let mut report = JournalFileReport {
        name: name.to_string(),
        bytes: 0,
        name_generation,
        header_generation: None,
        records: 0,
        admits: 0,
        evicts: 0,
        deltas: 0,
        torn_tail_bytes: 0,
        stale: false,
        error: None,
    };
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            report.error = Some(format!("unreadable: {e}"));
            return report;
        }
    };
    report.bytes = bytes.len() as u64;
    match decode_journal_tolerant(&bytes) {
        Ok((header, records, torn)) => {
            report.header_generation = Some(header.generation);
            report.records = records.len();
            report.torn_tail_bytes = torn;
            for rec in &records {
                match rec {
                    JournalRecord::Admit { .. } => report.admits += 1,
                    JournalRecord::Evict { .. } => report.evicts += 1,
                    JournalRecord::DatasetDelta { .. } => report.deltas += 1,
                }
            }
            if header.generation != name_generation {
                report.error = Some(format!(
                    "generation chain broken: file name says {name_generation}, header says {}",
                    header.generation
                ));
            }
        }
        Err(e) => report.error = Some(format!("rejected: {e}")),
    }
    report
}

/// Walk and validate `dir` as a persistence directory.
///
/// Errors only on directory-level I/O problems (the directory itself
/// unreadable); per-file damage is captured inside the report.
pub fn inspect_dir(dir: impl AsRef<Path>) -> io::Result<DoctorReport> {
    let dir = dir.as_ref();
    let mut journals = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".gcj"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            journals.push(inspect_journal(&entry.path(), name, g));
        }
    }
    journals.sort_by_key(|j| j.name_generation);

    let snap_path = dir.join("snapshot.gcs");
    let snapshot = match fs::read(&snap_path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => Some(SnapshotFileReport {
            bytes: 0,
            generation: None,
            entries: 0,
            clock: 0,
            error: Some(format!("unreadable: {e}")),
        }),
        Ok(bytes) => Some(match decode_snapshot(&bytes) {
            Ok((doc, generation)) => SnapshotFileReport {
                bytes: bytes.len() as u64,
                generation: Some(generation),
                entries: doc.entries.len(),
                clock: doc.clock,
                error: None,
            },
            Err(e) => SnapshotFileReport {
                bytes: bytes.len() as u64,
                generation: None,
                entries: 0,
                clock: 0,
                error: Some(format!("rejected: {e}")),
            },
        }),
    };

    // Mark staleness relative to the snapshot's generation and derive the
    // verdict exactly as `CacheStore::load` would decide it.
    let verdict = match &snapshot {
        None => {
            if journals.is_empty() {
                RestoreVerdict::ColdBenign { reason: "fresh directory (no snapshot)".into() }
            } else {
                // Journals without a snapshot: an interrupted *first*
                // rotation (journal created before the rename commits).
                RestoreVerdict::ColdBenign {
                    reason: "no snapshot; journal(s) from an interrupted rotation".into(),
                }
            }
        }
        Some(s) => match (&s.error, s.generation) {
            (Some(e), _) => RestoreVerdict::Corrupt { reason: format!("snapshot {e}") },
            (None, None) => RestoreVerdict::Corrupt { reason: "snapshot undecodable".into() },
            (None, Some(generation)) => {
                for j in journals.iter_mut() {
                    j.stale = j.name_generation != generation;
                }
                match journals.iter().find(|j| j.name_generation == generation) {
                    None => RestoreVerdict::Corrupt {
                        reason: format!("journal for generation {generation} is missing"),
                    },
                    Some(j) => match &j.error {
                        Some(e) => RestoreVerdict::Corrupt {
                            reason: format!("active journal {}: {e}", j.name),
                        },
                        None => RestoreVerdict::Warm {
                            generation,
                            entries: s.entries,
                            journal_records: j.records,
                            torn_tail_bytes: j.torn_tail_bytes,
                        },
                    },
                }
            }
        },
    };

    Ok(DoctorReport { snapshot, journals, verdict })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotDoc;
    use crate::store::CacheStore;
    use crate::JournalOp;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::QueryKind;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gc_doctor_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_dir(tag: &str) -> PathBuf {
        let dir = tmpdir(tag);
        let store = CacheStore::open(&dir).unwrap();
        let doc = SnapshotDoc {
            dataset_fingerprint: 7,
            universe: 4,
            cost: (0..4).map(|i| (i as f64, false)).collect(),
            ..SnapshotDoc::default()
        };
        store.rotate(&doc).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        store
            .append(&[JournalOp::Admit {
                orig_id: 0,
                now: 1,
                kind: QueryKind::Subgraph,
                base_tests: 1,
                base_cost: 1,
                graph: &g,
                answer: &[0],
            }])
            .unwrap();
        store.append(&[JournalOp::Evict { orig_id: 0, now: 2 }]).unwrap();
        store.sync().unwrap();
        dir
    }

    #[test]
    fn fresh_dir_is_benignly_cold() {
        let dir = tmpdir("fresh");
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        assert!(matches!(report.verdict, RestoreVerdict::ColdBenign { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn healthy_pair_reports_warm() {
        let dir = seeded_dir("warm");
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        match report.verdict {
            RestoreVerdict::Warm { generation, journal_records, torn_tail_bytes, .. } => {
                assert_eq!(generation, 1);
                assert_eq!(journal_records, 2);
                assert_eq!(torn_tail_bytes, 0);
            }
            other => panic!("expected warm, got {other:?}"),
        }
        let txt = report.describe();
        assert!(txt.contains("snapshot.gcs"), "describe lists the snapshot: {txt}");
        assert!(txt.contains("journal-1.gcj"), "describe lists the journal: {txt}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_serializes_to_json() {
        let dir = seeded_dir("json");
        let report = inspect_dir(&dir).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        for key in ["\"snapshot\"", "\"journals\"", "\"verdict\"", "\"Warm\"", "journal-1.gcj"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_reported_but_healthy() {
        let dir = seeded_dir("torn");
        let path = dir.join("journal-1.gcj");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        match report.verdict {
            RestoreVerdict::Warm { journal_records, torn_tail_bytes, .. } => {
                assert_eq!(journal_records, 1, "torn last record dropped");
                assert!(torn_tail_bytes > 0);
            }
            other => panic!("expected warm with torn tail, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_flagged() {
        // Snapshot bit flip.
        let dir = seeded_dir("flip_snap");
        let path = dir.join("snapshot.gcs");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        assert!(!inspect_dir(&dir).unwrap().healthy());
        let _ = fs::remove_dir_all(&dir);

        // Journal payload bit flip (inside a complete frame).
        let dir = seeded_dir("flip_jrnl");
        let path = dir.join("journal-1.gcj");
        let mut bytes = fs::read(&path).unwrap();
        bytes[crate::journal::HEADER_LEN + 12 + 1] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        assert!(!inspect_dir(&dir).unwrap().healthy());
        let _ = fs::remove_dir_all(&dir);

        // Missing active journal.
        let dir = seeded_dir("missing_jrnl");
        fs::remove_file(dir.join("journal-1.gcj")).unwrap();
        assert!(!inspect_dir(&dir).unwrap().healthy());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_is_benign() {
        let dir = seeded_dir("stale");
        // A journal for a generation the snapshot does not name.
        fs::write(
            dir.join("journal-9.gcj"),
            crate::journal::encode_header(&crate::JournalHeader {
                generation: 9,
                dataset_fingerprint: 7,
                universe: 4,
            }),
        )
        .unwrap();
        let report = inspect_dir(&dir).unwrap();
        assert!(report.healthy());
        assert!(report.journals.iter().any(|j| j.stale));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_chain_mismatch_is_corrupt() {
        let dir = seeded_dir("chain");
        // Rename the valid journal so its name no longer matches its
        // header: the active journal slot now points at a mismatched file.
        fs::rename(dir.join("journal-1.gcj"), dir.join("journal-2.gcj")).unwrap();
        // Re-point the snapshot's pairing by... simpler: snapshot says 1,
        // journal-1 is gone → missing active journal = corrupt; and the
        // renamed file must flag its broken chain.
        let report = inspect_dir(&dir).unwrap();
        assert!(!report.healthy());
        let j = report.journals.iter().find(|j| j.name == "journal-2.gcj").unwrap();
        assert!(j.error.as_deref().unwrap_or("").contains("generation chain"), "{:?}", j.error);
        let _ = fs::remove_dir_all(&dir);
    }
}
