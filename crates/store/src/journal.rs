//! The append-only admission/eviction journal.
//!
//! Between snapshots, every admission and eviction is appended as one
//! length-prefixed, CRC-guarded record, so `snapshot + journal replay`
//! always reconstructs the cache state without re-executing (or
//! re-verifying) a single query. Each journal file belongs to exactly one
//! snapshot generation — the file is named `journal-<gen>.gcj` and its
//! header repeats the generation, the dataset fingerprint and the universe,
//! so a journal can never be replayed over the wrong base.
//!
//! ## File layout
//!
//! ```text
//! magic "GCJRNL01"   8 bytes
//! version            u32
//! generation         u64
//! dataset fp         u64
//! universe           u64
//! header crc64       u64     (over everything before it)
//! record*            each:  len u32 ‖ crc64(payload) u64 ‖ payload
//! ```
//!
//! Reading is fail-closed: a bad header, a checksum mismatch (a bit flip)
//! or trailing payload bytes inside a complete frame reject the **whole**
//! journal and the recovery path starts cold. The one tolerated anomaly is
//! an *incomplete trailing frame* — precisely what a crash mid-append
//! leaves — which [`decode_journal_tolerant`] (the recovery path) drops,
//! keeping the valid prefix. [`decode_journal`] stays strict and rejects
//! even that. The journal never risks a wrong answer — at worst it costs
//! warmth.

use crate::snapshot::{
    get_answer, get_dataset_op, get_graph, get_kind, put_answer, put_dataset_op, put_graph,
    put_kind,
};
use crate::wire::{crc64, ByteReader, ByteWriter, WireError, WireResult};
use gc_graph::Graph;
use gc_method::{DatasetOp, QueryKind};

/// Magic prefix of journal files.
pub const JOURNAL_MAGIC: &[u8; 8] = b"GCJRNL01";

/// Identity a journal binds to: its snapshot generation and dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Snapshot generation this journal extends.
    pub generation: u64,
    /// Dataset content fingerprint.
    pub dataset_fingerprint: u64,
    /// Dataset size (answer universe).
    pub universe: u64,
}

/// A cache mutation to append, borrowing the runtime's data (no clones on
/// the admission path). The owned reader-side twin is [`JournalRecord`].
#[derive(Debug, Clone, Copy)]
pub enum JournalOp<'a> {
    /// An entry was admitted.
    Admit {
        /// Entry id in the originating cache (shard-encoded when sharded).
        orig_id: u32,
        /// Logical admission time.
        now: u64,
        /// Query kind.
        kind: QueryKind,
        /// `|C_M|` of the executed query.
        base_tests: u64,
        /// Verifier steps of the executed query.
        base_cost: u64,
        /// The admitted query graph.
        graph: &'a Graph,
        /// Sorted member indices of the exact answer set.
        answer: &'a [u32],
    },
    /// An entry was evicted.
    Evict {
        /// Entry id in the originating cache.
        orig_id: u32,
        /// Logical eviction time.
        now: u64,
    },
    /// The dataset itself mutated (live insert/remove of a data graph).
    /// Replay applies the op to the base dataset and validates the
    /// resulting fingerprint, so a journal can never mutate the wrong
    /// dataset state. An `Insert` grows the running answer universe for
    /// all later records in the file.
    DatasetDelta {
        /// Dataset generation *after* this mutation.
        generation: u64,
        /// `Dataset::content_fingerprint()` after this mutation.
        resulting_fingerprint: u64,
        /// The mutation.
        op: &'a DatasetOp,
    },
}

/// An owned, decoded journal record.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// An entry was admitted.
    Admit {
        /// Entry id in the originating cache.
        orig_id: u32,
        /// Logical admission time.
        now: u64,
        /// Query kind.
        kind: QueryKind,
        /// `|C_M|` of the executed query.
        base_tests: u64,
        /// Verifier steps of the executed query.
        base_cost: u64,
        /// The admitted query graph.
        graph: Graph,
        /// Sorted member indices of the exact answer set.
        answer: Vec<u32>,
    },
    /// An entry was evicted.
    Evict {
        /// Entry id in the originating cache.
        orig_id: u32,
        /// Logical eviction time.
        now: u64,
    },
    /// The dataset itself mutated (see [`JournalOp::DatasetDelta`]).
    DatasetDelta {
        /// Dataset generation *after* this mutation.
        generation: u64,
        /// `Dataset::content_fingerprint()` after this mutation.
        resulting_fingerprint: u64,
        /// The mutation.
        op: DatasetOp,
    },
}

const TAG_ADMIT: u8 = 1;
const TAG_EVICT: u8 = 2;
const TAG_DELTA: u8 = 3;

/// Encode the journal file header.
pub fn encode_header(h: &JournalHeader) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(JOURNAL_MAGIC);
    w.put_u32(crate::snapshot::FORMAT_VERSION);
    w.put_u64(h.generation);
    w.put_u64(h.dataset_fingerprint);
    w.put_u64(h.universe);
    let crc = crc64(w.as_bytes());
    w.put_u64(crc);
    w.into_bytes()
}

/// Byte length of the encoded header.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// Encode one framed record (`len ‖ crc ‖ payload`).
pub fn encode_record(op: &JournalOp<'_>) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    match *op {
        JournalOp::Admit { orig_id, now, kind, base_tests, base_cost, graph, answer } => {
            payload.put_u8(TAG_ADMIT);
            payload.put_u32(orig_id);
            payload.put_u64(now);
            put_kind(&mut payload, kind);
            payload.put_u64(base_tests);
            payload.put_u64(base_cost);
            put_graph(&mut payload, graph);
            put_answer(&mut payload, answer);
        }
        JournalOp::Evict { orig_id, now } => {
            payload.put_u8(TAG_EVICT);
            payload.put_u32(orig_id);
            payload.put_u64(now);
        }
        JournalOp::DatasetDelta { generation, resulting_fingerprint, op } => {
            payload.put_u8(TAG_DELTA);
            payload.put_u64(generation);
            payload.put_u64(resulting_fingerprint);
            put_dataset_op(&mut payload, op);
        }
    }
    let mut frame = ByteWriter::new();
    frame.put_u32(payload.len() as u32);
    frame.put_u64(crc64(payload.as_bytes()));
    frame.put_raw(payload.as_bytes());
    frame.into_bytes()
}

fn decode_payload(payload: &[u8], universe: u64) -> WireResult<JournalRecord> {
    let mut r = ByteReader::new(payload);
    let rec = match r.get_u8()? {
        TAG_ADMIT => {
            let orig_id = r.get_u32()?;
            let now = r.get_u64()?;
            let kind = get_kind(&mut r)?;
            let base_tests = r.get_u64()?;
            let base_cost = r.get_u64()?;
            let graph = get_graph(&mut r)?;
            let answer = get_answer(&mut r, universe)?;
            JournalRecord::Admit { orig_id, now, kind, base_tests, base_cost, graph, answer }
        }
        TAG_EVICT => JournalRecord::Evict { orig_id: r.get_u32()?, now: r.get_u64()? },
        TAG_DELTA => {
            let generation = r.get_u64()?;
            let resulting_fingerprint = r.get_u64()?;
            let op = get_dataset_op(&mut r, universe)?;
            JournalRecord::DatasetDelta { generation, resulting_fingerprint, op }
        }
        other => return Err(WireError::new(format!("unknown journal record tag {other}"))),
    };
    r.expect_end()?;
    Ok(rec)
}

fn walk_journal(
    bytes: &[u8],
    tolerate_tail: bool,
) -> WireResult<(JournalHeader, Vec<JournalRecord>, usize)> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(8)? != JOURNAL_MAGIC {
        return Err(WireError::new("bad journal magic"));
    }
    let version = r.get_u32()?;
    if version != crate::snapshot::FORMAT_VERSION {
        return Err(WireError::new(format!("unsupported journal version {version}")));
    }
    let header = JournalHeader {
        generation: r.get_u64()?,
        dataset_fingerprint: r.get_u64()?,
        universe: r.get_u64()?,
    };
    let stored = r.get_u64()?;
    if crc64(&bytes[..HEADER_LEN - 8]) != stored {
        return Err(WireError::new("journal header checksum mismatch"));
    }

    let mut records = Vec::new();
    // The answer universe *runs* across the file: a dataset-delta insert
    // grows the dataset, so admissions appended after it may legitimately
    // carry answer indices beyond the header's (rotation-time) universe.
    // Validating each record against the universe as of its position keeps
    // the bound exact in both directions.
    let mut universe = header.universe;
    while r.remaining() != 0 {
        if r.remaining() < 12 {
            if tolerate_tail {
                return Ok((header, records, r.remaining()));
            }
            return Err(WireError::new(format!(
                "torn journal record: {} bytes of frame header",
                r.remaining()
            )));
        }
        // Peek the frame header without committing: a declared length that
        // overruns the file is a tear, and in tolerant mode those 12 bytes
        // belong to the torn tail.
        let before_frame = r.remaining();
        let len = r.get_u32()? as usize;
        let crc = r.get_u64()?;
        if r.remaining() < len {
            if tolerate_tail {
                return Ok((header, records, before_frame));
            }
            return Err(WireError::new(format!(
                "torn journal record: payload wants {len} bytes, {} remain",
                r.remaining()
            )));
        }
        let payload = r.get_raw(len)?;
        if crc64(payload) != crc {
            return Err(WireError::new(format!(
                "journal record {} checksum mismatch",
                records.len()
            )));
        }
        let rec = decode_payload(payload, universe)?;
        if let JournalRecord::DatasetDelta { op: DatasetOp::Insert(_), .. } = &rec {
            universe += 1;
        }
        records.push(rec);
    }
    Ok((header, records, 0))
}

/// Decode a complete journal file: header plus every record, strictly.
/// Any incomplete trailing frame rejects the whole journal (the
/// corruption-suite contract); recovery uses
/// [`decode_journal_tolerant`] instead.
pub fn decode_journal(bytes: &[u8]) -> WireResult<(JournalHeader, Vec<JournalRecord>)> {
    let (header, records, _) = walk_journal(bytes, false)?;
    Ok((header, records))
}

/// Decode a journal, tolerating a torn tail.
///
/// An *incomplete trailing frame* — fewer than 12 bytes of frame header
/// left, or a declared payload length that overruns the file — is exactly
/// what a crash mid-append leaves behind. Since appends are strictly
/// ordered, the records before the tear are a valid earlier state: they
/// are returned along with the number of trailing bytes dropped.
///
/// Everything else stays fail-closed exactly like [`decode_journal`]: a
/// bad header, a checksum mismatch on a **complete** frame, or a payload
/// that fails to decode is corruption (not a tear) and rejects the whole
/// journal.
pub fn decode_journal_tolerant(
    bytes: &[u8],
) -> WireResult<(JournalHeader, Vec<JournalRecord>, usize)> {
    walk_journal(bytes, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn header() -> JournalHeader {
        JournalHeader { generation: 4, dataset_fingerprint: 0xFEED, universe: 6 }
    }

    fn sample_file() -> Vec<u8> {
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let mut bytes = encode_header(&header());
        bytes.extend(encode_record(&JournalOp::Admit {
            orig_id: 3,
            now: 11,
            kind: QueryKind::Subgraph,
            base_tests: 5,
            base_cost: 50,
            graph: &g,
            answer: &[0, 2, 5],
        }));
        bytes.extend(encode_record(&JournalOp::Evict { orig_id: 1, now: 12 }));
        bytes
    }

    #[test]
    fn roundtrip() {
        let bytes = sample_file();
        let (h, records) = decode_journal(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(records.len(), 2);
        match &records[0] {
            JournalRecord::Admit { orig_id, now, base_tests, answer, graph, .. } => {
                assert_eq!((*orig_id, *now, *base_tests), (3, 11, 5));
                assert_eq!(answer, &[0, 2, 5]);
                assert_eq!(graph.vertex_count(), 2);
            }
            other => panic!("expected admit, got {other:?}"),
        }
        match &records[1] {
            JournalRecord::Evict { orig_id, now } => assert_eq!((*orig_id, *now), (1, 12)),
            other => panic!("expected evict, got {other:?}"),
        }
    }

    #[test]
    fn dataset_delta_roundtrip_and_running_universe() {
        // Header universe 6; an Insert delta grows the running universe to
        // 7, so a later Admit whose answer includes index 6 (the inserted
        // graph) must decode — and a Remove delta naming that id validates
        // against the *running* universe, not the header's.
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let new_graph = graph_from_parts(&[Label(9)], &[]).unwrap();
        let ins = DatasetOp::Insert(new_graph.clone());
        let rem = DatasetOp::Remove(6);
        let mut bytes = encode_header(&header());
        bytes.extend(encode_record(&JournalOp::DatasetDelta {
            generation: 1,
            resulting_fingerprint: 0xABCD,
            op: &ins,
        }));
        bytes.extend(encode_record(&JournalOp::Admit {
            orig_id: 7,
            now: 20,
            kind: QueryKind::Subgraph,
            base_tests: 5,
            base_cost: 50,
            graph: &g,
            answer: &[1, 6],
        }));
        bytes.extend(encode_record(&JournalOp::DatasetDelta {
            generation: 2,
            resulting_fingerprint: 0xDCBA,
            op: &rem,
        }));
        let (h, records) = decode_journal(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(records.len(), 3);
        match &records[0] {
            JournalRecord::DatasetDelta { generation, resulting_fingerprint, op } => {
                assert_eq!((*generation, *resulting_fingerprint), (1, 0xABCD));
                assert_eq!(op, &DatasetOp::Insert(new_graph));
            }
            other => panic!("expected delta, got {other:?}"),
        }
        match &records[1] {
            JournalRecord::Admit { answer, .. } => assert_eq!(answer, &[1, 6]),
            other => panic!("expected admit, got {other:?}"),
        }
        match &records[2] {
            JournalRecord::DatasetDelta { op, .. } => assert_eq!(op, &DatasetOp::Remove(6)),
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn admit_beyond_running_universe_rejected() {
        // Without a preceding Insert delta, an answer index equal to the
        // header universe is out of bounds and must reject the journal.
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let mut bytes = encode_header(&header());
        bytes.extend(encode_record(&JournalOp::Admit {
            orig_id: 7,
            now: 20,
            kind: QueryKind::Subgraph,
            base_tests: 5,
            base_cost: 50,
            graph: &g,
            answer: &[6],
        }));
        assert!(decode_journal(&bytes).is_err());
    }

    #[test]
    fn remove_delta_beyond_running_universe_rejected() {
        let rem = DatasetOp::Remove(6);
        let mut bytes = encode_header(&header());
        bytes.extend(encode_record(&JournalOp::DatasetDelta {
            generation: 1,
            resulting_fingerprint: 0,
            op: &rem,
        }));
        assert!(decode_journal(&bytes).is_err());
    }

    #[test]
    fn header_only_is_empty_journal() {
        let (h, records) = decode_journal(&encode_header(&header())).unwrap();
        assert_eq!(h.generation, 4);
        assert!(records.is_empty());
    }

    #[test]
    fn truncations_rejected_except_record_boundaries() {
        // Append-only semantics: a cut exactly at a record boundary is
        // indistinguishable from "fewer appends" and decodes as a valid
        // *shorter* journal (a sound earlier state). Every other cut —
        // inside the header or inside a record — must be rejected.
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let head = encode_header(&header());
        let rec1 = encode_record(&JournalOp::Admit {
            orig_id: 3,
            now: 11,
            kind: QueryKind::Subgraph,
            base_tests: 5,
            base_cost: 50,
            graph: &g,
            answer: &[0, 2, 5],
        });
        let rec2 = encode_record(&JournalOp::Evict { orig_id: 1, now: 12 });
        let boundaries =
            [head.len(), head.len() + rec1.len(), head.len() + rec1.len() + rec2.len()];
        let bytes: Vec<u8> = [head, rec1, rec2].concat();
        for cut in 0..=bytes.len() {
            let result = decode_journal(&bytes[..cut]);
            if let Some(records) = boundaries.iter().position(|&b| b == cut) {
                assert_eq!(
                    result.expect("boundary cut is a valid shorter journal").1.len(),
                    records,
                    "boundary cut at {cut}"
                );
            } else {
                assert!(result.is_err(), "mid-record truncation to {cut} accepted");
            }
        }
    }

    #[test]
    fn every_bit_flip_rejected() {
        let bytes = sample_file();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x04;
            assert!(decode_journal(&bad).is_err(), "flip at byte {byte} accepted");
        }
    }

    #[test]
    fn mid_record_tear_rejected() {
        // Cut inside the first record's payload: the frame header promises
        // more bytes than exist.
        let head = encode_header(&header()).len();
        let bytes = sample_file();
        let cut = head + 20; // 12-byte frame header + 8 payload bytes
        assert!(cut < bytes.len());
        assert!(decode_journal(&bytes[..cut]).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample_file();
        bytes[8] = 99; // version field, little-endian low byte
        assert!(decode_journal(&bytes).is_err());
    }

    #[test]
    fn tolerant_decode_drops_only_the_torn_tail() {
        // Every truncation point from the header boundary on: the cut
        // either lands on a record boundary (no tail) or strictly inside
        // the last frame (tail = the cut-off bytes). Either way the valid
        // prefix must come back intact.
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let head = encode_header(&header());
        let rec1 = encode_record(&JournalOp::Admit {
            orig_id: 3,
            now: 11,
            kind: QueryKind::Subgraph,
            base_tests: 5,
            base_cost: 50,
            graph: &g,
            answer: &[0, 2, 5],
        });
        let rec2 = encode_record(&JournalOp::Evict { orig_id: 1, now: 12 });
        let boundaries =
            [head.len(), head.len() + rec1.len(), head.len() + rec1.len() + rec2.len()];
        let bytes: Vec<u8> = [head, rec1, rec2].concat();
        for cut in boundaries[0]..=bytes.len() {
            let (h, records, torn) =
                decode_journal_tolerant(&bytes[..cut]).expect("tail cut at {cut} tolerated");
            assert_eq!(h, header());
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(records.len(), complete, "cut at {cut}");
            let last_boundary = boundaries[complete];
            assert_eq!(torn, cut - last_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn tolerant_decode_still_rejects_corruption() {
        // Bit flips inside *complete* frames (or the header) are
        // corruption, not tears: tolerant decode must stay fail-closed.
        let bytes = sample_file();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x04;
            match decode_journal_tolerant(&bad) {
                Err(_) => {}
                // A flip in the final frame's length field can turn it
                // into an overrun, which legitimately reads as a tear —
                // then the record must have been dropped, never accepted.
                Ok((_, records, torn)) => {
                    assert!(torn > 0, "flip at byte {byte} accepted with no tail");
                    assert!(records.len() < 2, "flip at byte {byte} kept a corrupt record");
                }
            }
        }
    }

    #[test]
    fn tolerant_decode_rejects_truncated_header() {
        let bytes = sample_file();
        for cut in 0..HEADER_LEN {
            assert!(decode_journal_tolerant(&bytes[..cut]).is_err(), "header cut {cut} accepted");
        }
    }
}
