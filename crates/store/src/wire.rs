//! Low-level wire codec: little-endian primitives plus a CRC-64 checksum.
//!
//! Everything the store writes goes through [`ByteWriter`] and comes back
//! through [`ByteReader`], so the on-disk byte layout is defined in exactly
//! one place. The reader is *strict*: every accessor bounds-checks, decoders
//! must consume their input exactly, and any mismatch surfaces as a
//! [`WireError`] that the recovery path turns into a cold start. Nothing in
//! this module panics on untrusted bytes.

use std::fmt;

/// Decode failure: a human-readable description of what did not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Shorthand for decoder results.
pub type WireResult<T> = Result<T, WireError>;

// ---- CRC-64 -----------------------------------------------------------------

/// CRC-64/XZ (ECMA-182 polynomial, reflected) — the checksum guarding every
/// snapshot file and journal record against bit flips and torn writes.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---- writer -----------------------------------------------------------------

/// Append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes without a length prefix (headers, magics).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

// ---- reader -----------------------------------------------------------------

/// Strict bounds-checked cursor over untrusted bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed — decoders call this last so
    /// trailing garbage is rejected, not silently ignored.
    pub fn expect_end(&self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::new(format!(
                "{} trailing bytes after record",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read `n` raw bytes (headers, magics).
    pub fn get_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string, capped at `max_len` bytes
    /// so a corrupted length field cannot drive a huge allocation.
    pub fn get_str(&mut self, max_len: usize) -> WireResult<String> {
        let len = self.get_u32()? as usize;
        if len > max_len {
            return Err(WireError::new(format!("string length {len} exceeds cap {max_len}")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new("invalid UTF-8 string"))
    }

    /// Read a `u32` element count, rejecting counts whose elements (at
    /// `elem_size` bytes minimum each) could not possibly fit in the
    /// remaining input — the guard that keeps corrupted counts from turning
    /// into multi-gigabyte `Vec::with_capacity` calls.
    pub fn get_count(&mut self, elem_size: usize) -> WireResult<usize> {
        let count = self.get_u32()? as usize;
        if count.saturating_mul(elem_size.max(1)) > self.remaining() {
            return Err(WireError::new(format!(
                "element count {count} cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(1.5);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), 1.5);
        assert_eq!(r.get_str(64).unwrap(), "héllo");
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u64().is_err());
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn absurd_counts_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_count(4).is_err());
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ of "123456789" is the standard check value.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"abc"), crc64(b"abd"));
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
