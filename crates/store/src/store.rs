//! [`CacheStore`]: a persistence directory holding one snapshot plus its
//! append-only journal.
//!
//! ## Crash safety
//!
//! A *rotation* ([`CacheStore::rotate`]) makes the next generation durable
//! in an order that leaves a consistent pair on disk no matter where a
//! crash lands:
//!
//! 1. the new snapshot is written to a temp file and fsynced;
//! 2. the new generation's journal (`journal-<gen>.gcj`, header only) is
//!    created and fsynced;
//! 3. the temp file is atomically renamed over `snapshot.gcs` — the commit
//!    point;
//! 4. stale journals of older generations are deleted (best-effort).
//!
//! The directory itself is fsynced after steps 2 and 3, so the ordering
//! holds across power loss, not just process crashes: step 4's deletions
//! can never reach disk ahead of the rename they depend on.
//!
//! A crash before step 3 leaves the old snapshot with its old journal
//! (both intact); after step 3 the new pair is live. [`CacheStore::load`]
//! always pairs `snapshot.gcs` with the journal *named by the snapshot's
//! own generation*, so a leftover journal from an interrupted rotation is
//! simply ignored.
//!
//! ## Fail-closed recovery
//!
//! [`CacheStore::load`] never guesses: a missing snapshot, a checksum or
//! framing failure anywhere in either file, or a journal whose header does
//! not match the snapshot's generation all come back as
//! [`LoadOutcome::Cold`] with the reason — the caller starts cold and the
//! next rotation overwrites the bad state. Corruption can cost warmth,
//! never correctness.

use crate::faults::{FaultAction, FaultPlan, FaultSite};
use crate::journal::{
    decode_journal_tolerant, encode_header, encode_record, JournalHeader, JournalOp, JournalRecord,
};
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotDoc};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// File name of the current snapshot.
const SNAPSHOT_FILE: &str = "snapshot.gcs";
/// Temp name the next snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.gcs.tmp";

fn journal_file(generation: u64) -> String {
    format!("journal-{generation}.gcj")
}

/// Fsync a directory so renames/creates/unlinks inside it are durable
/// (opening a directory read-only and `sync_all`ing it is the portable
/// POSIX idiom; on platforms where directories cannot be opened this
/// degrades to a no-op error we propagate).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// When the active journal is fsynced (group commit).
///
/// Appends always reach the OS page cache immediately; the policy only
/// decides when `fsync` pushes them to stable storage. The bounded-loss
/// guarantee after a power failure:
///
/// - `Never` — nothing beyond the OS's own writeback; a crash can lose
///   every record since the last rotation or explicit
///   [`CacheStore::sync`].
/// - `EveryN(n)` — at most `n - 1 + B` records, where `B` is the largest
///   single append batch (one query's admission + evictions): the sync
///   countdown can sit at `n - 1`, and the batch that crosses it can be
///   lost wholesale if power fails before its group commit completes.
/// - `IntervalMs(ms)` — every record older than `ms` milliseconds (plus
///   the in-flight batch) is durable.
///
/// In every case recovery accepts only an intact prefix of the journal:
/// a torn trailing frame is dropped, and corruption anywhere before it
/// fails closed to a cold start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync on append (rotations and explicit `sync` still do).
    #[default]
    Never,
    /// Group-commit: fsync once at least `n` records have accumulated
    /// since the last sync.
    EveryN(u64),
    /// Group-commit: fsync when the last sync is at least this many
    /// milliseconds old.
    IntervalMs(u64),
}

/// Result of one rotation: what was made durable.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotInfo {
    /// The new generation number.
    pub generation: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Entries captured in the snapshot.
    pub entries: usize,
}

/// Result of [`CacheStore::load`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// Nothing usable on disk — start cold. `reason` says why (missing
    /// files are normal on first boot; anything else names the corruption).
    Cold {
        /// Why the store could not be restored.
        reason: String,
    },
    /// A valid snapshot (and its journal's records, possibly empty) —
    /// replay `doc` then `journal` to resume warm.
    Warm(Box<RecoveredState>),
}

/// A validated snapshot + journal pair ready for replay.
#[derive(Debug)]
pub struct RecoveredState {
    /// The decoded snapshot.
    pub doc: SnapshotDoc,
    /// Generation of the snapshot/journal pair.
    pub generation: u64,
    /// Journal records appended after the snapshot, in append order.
    pub journal: Vec<JournalRecord>,
    /// Bytes of an incomplete trailing frame (a crash mid-append) that
    /// were dropped during recovery. Zero for a cleanly closed journal.
    pub torn_tail_bytes: usize,
}

struct Inner {
    /// Generation of the currently active journal, if a rotation happened
    /// in this process.
    active: Option<ActiveJournal>,
    /// Highest generation ever observed (from disk or rotations), so the
    /// next rotation picks a strictly larger one.
    last_generation: u64,
    /// Group-commit policy applied after each append.
    fsync: FsyncPolicy,
    /// Largest single append batch seen (the `B` of the bounded-loss
    /// guarantee on [`FsyncPolicy`]).
    max_batch: u64,
}

struct ActiveJournal {
    generation: u64,
    file: File,
    bytes: u64,
    records: u64,
    /// A previous write failed partway: the file may hold torn bytes past
    /// `bytes` that must be truncated away before the next append.
    dirty: bool,
    /// Records appended since the last fsync (drives `EveryN`).
    unsynced_records: u64,
    /// Byte offset and record count known to be on stable storage.
    synced_bytes: u64,
    synced_records: u64,
    /// When the journal was last fsynced (drives `IntervalMs`).
    last_sync: Instant,
}

impl ActiveJournal {
    /// Truncate away torn bytes left by a failed write, restoring the
    /// file to the last known-good record boundary so a retry (or the
    /// next append) starts clean — a failed write can cost the batch,
    /// never mid-file integrity.
    fn repair(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.set_len(self.bytes)?;
            self.file.seek(SeekFrom::Start(self.bytes))?;
            self.dirty = false;
        }
        Ok(())
    }

    fn mark_synced(&mut self) {
        self.unsynced_records = 0;
        self.synced_bytes = self.bytes;
        self.synced_records = self.records;
        self.last_sync = Instant::now();
    }
}

/// A persistence directory for one cache instance.
///
/// All methods take `&self` — appends and rotations serialize on an
/// internal mutex, so one store can be shared (behind an `Arc`) by the
/// concurrent front-end's query threads.
pub struct CacheStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    /// Installed fault plan (tests/chaos harness only; `None` in
    /// production). Kept outside `inner` so arming faults never contends
    /// with I/O.
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("store lock");
        f.debug_struct("CacheStore")
            .field("dir", &self.dir)
            .field("generation", &inner.active.as_ref().map(|a| a.generation))
            .field("journal_bytes", &inner.active.as_ref().map_or(0, |a| a.bytes))
            .finish()
    }
}

impl CacheStore {
    /// Open (creating if needed) the persistence directory `dir`.
    ///
    /// Opening only scans for the highest existing generation; it does not
    /// read cache state (that is [`CacheStore::load`]) and does not accept
    /// appends until the first [`CacheStore::rotate`] establishes which
    /// snapshot the journal extends.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut last_generation = 0u64;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen_str) =
                name.strip_prefix("journal-").and_then(|s| s.strip_suffix(".gcj"))
            {
                if let Ok(g) = gen_str.parse::<u64>() {
                    last_generation = last_generation.max(g);
                }
            }
        }
        // The snapshot's generation also bounds the next one (covers a dir
        // where stale journals were cleaned but the snapshot remains).
        if let Ok(bytes) = fs::read(dir.join(SNAPSHOT_FILE)) {
            if let Ok((_, g)) = decode_snapshot(&bytes) {
                last_generation = last_generation.max(g);
            }
        }
        Ok(CacheStore {
            dir,
            inner: Mutex::new(Inner {
                active: None,
                last_generation,
                fsync: FsyncPolicy::Never,
                max_batch: 0,
            }),
            faults: Mutex::new(None),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Install (or with `None`, remove) a fault plan consulted at every
    /// I/O site. Testing hook; a plain open has no plan and no overhead
    /// beyond one uncontended lock per persistence call.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock().expect("fault plan slot") = plan;
    }

    /// Set the group-commit policy applied by [`CacheStore::append`].
    pub fn set_fsync_policy(&self, policy: FsyncPolicy) {
        self.inner.lock().expect("store lock").fsync = policy;
    }

    /// The current group-commit policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.inner.lock().expect("store lock").fsync
    }

    /// Consult the installed fault plan (if any) for one op at `site`.
    /// Panics here on an injected [`FaultAction::Panic`] so the panic
    /// message names the site.
    fn fault(&self, site: FaultSite) -> FaultAction {
        let plan = self.faults.lock().expect("fault plan slot").clone();
        match plan {
            None => FaultAction::Proceed,
            Some(plan) => match plan.on_op(site) {
                FaultAction::Panic => panic!("injected panic at store site {}", site.name()),
                action => action,
            },
        }
    }

    /// The common case: sites that either proceed or fail whole (partial
    /// writes are only meaningful for `JournalAppend`/`SnapshotWrite`,
    /// which handle `ShortWrite`/`TornRecord` themselves).
    fn fault_gate(&self, site: FaultSite) -> io::Result<()> {
        match self.fault(site) {
            FaultAction::Proceed => Ok(()),
            FaultAction::Error(msg) => Err(io::Error::other(msg)),
            FaultAction::ShortWrite { .. } | FaultAction::TornRecord => {
                Err(io::Error::other(format!("injected write fault at {}", site.name())))
            }
            FaultAction::Panic => unreachable!("handled in fault()"),
        }
    }

    /// Read and strictly validate the snapshot + journal pair.
    pub fn load(&self) -> LoadOutcome {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let bytes = match fs::read(&snap_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return LoadOutcome::Cold { reason: "no snapshot on disk".into() }
            }
            Err(e) => return LoadOutcome::Cold { reason: format!("snapshot unreadable: {e}") },
        };
        let (doc, generation) = match decode_snapshot(&bytes) {
            Ok(v) => v,
            Err(e) => return LoadOutcome::Cold { reason: format!("snapshot rejected: {e}") },
        };
        let journal_path = self.dir.join(journal_file(generation));
        let journal_bytes = match fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) => {
                return LoadOutcome::Cold {
                    reason: format!("journal for generation {generation} unreadable: {e}"),
                }
            }
        };
        // Tolerant of exactly one anomaly: an incomplete trailing frame
        // (a crash mid-append) is dropped and reported; anything else —
        // bit flips, mid-file framing damage — still fails closed.
        let (header, journal, torn_tail_bytes) = match decode_journal_tolerant(&journal_bytes) {
            Ok(v) => v,
            Err(e) => return LoadOutcome::Cold { reason: format!("journal rejected: {e}") },
        };
        let expected = JournalHeader {
            generation,
            dataset_fingerprint: doc.dataset_fingerprint,
            universe: doc.universe,
        };
        if header != expected {
            return LoadOutcome::Cold {
                reason: format!("journal header {header:?} does not match snapshot {expected:?}"),
            };
        }
        LoadOutcome::Warm(Box::new(RecoveredState { doc, generation, journal, torn_tail_bytes }))
    }

    /// Durably write `doc` as the next generation's snapshot and open a
    /// fresh journal for it (see the module docs for the crash-safe order).
    /// Subsequent [`CacheStore::append`] calls extend the new journal.
    pub fn rotate(&self, doc: &SnapshotDoc) -> io::Result<SnapshotInfo> {
        let mut inner = self.inner.lock().expect("store lock");
        let generation = inner.last_generation + 1;

        // 1. Stage the snapshot.
        let image = encode_snapshot(doc, generation);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        match self.fault(FaultSite::SnapshotWrite) {
            FaultAction::Proceed => {}
            FaultAction::Error(msg) => return Err(io::Error::other(msg)),
            // A short/torn snapshot write models a crash while staging:
            // leave a partial temp file behind (never the commit name)
            // and fail the rotation.
            FaultAction::ShortWrite { keep } => {
                let keep = keep.min(image.len());
                let mut f = File::create(&tmp)?;
                let _ = f.write_all(&image[..keep]);
                return Err(io::Error::other("injected short snapshot write"));
            }
            FaultAction::TornRecord => {
                let mut f = File::create(&tmp)?;
                let _ = f.write_all(&image[..image.len() * 3 / 4]);
                return Err(io::Error::other("injected torn snapshot write"));
            }
            FaultAction::Panic => unreachable!("handled in fault()"),
        }
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
        drop(f);

        // 2. Create the new journal with its header; sync the directory so
        //    the journal's dirent is durable before the rename can commit.
        let header = JournalHeader {
            generation,
            dataset_fingerprint: doc.dataset_fingerprint,
            universe: doc.universe,
        };
        let journal_path = self.dir.join(journal_file(generation));
        self.fault_gate(FaultSite::JournalCreate)?;
        let mut journal =
            OpenOptions::new().create(true).write(true).truncate(true).open(&journal_path)?;
        let header_bytes = encode_header(&header);
        journal.write_all(&header_bytes)?;
        journal.sync_all()?;
        self.fault_gate(FaultSite::DirSync)?;
        sync_dir(&self.dir)?;

        // 3. Commit: atomic rename, made durable by a directory sync —
        //    without it, a power loss could persist step 4's deletions
        //    while losing the rename, leaving no journal for the old
        //    generation.
        self.fault_gate(FaultSite::Rename)?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&self.dir)?;

        // 4. Clean stale journals (best-effort; leftovers are ignored by
        //    `load`, which pairs by the snapshot's generation).
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(g) = name
                    .strip_prefix("journal-")
                    .and_then(|s| s.strip_suffix(".gcj"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if g != generation {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }

        inner.last_generation = generation;
        inner.active = Some(ActiveJournal {
            generation,
            file: journal,
            bytes: header_bytes.len() as u64,
            records: 0,
            dirty: false,
            unsynced_records: 0,
            // The header was just fsynced above.
            synced_bytes: header_bytes.len() as u64,
            synced_records: 0,
            last_sync: Instant::now(),
        });
        Ok(SnapshotInfo {
            generation,
            snapshot_bytes: image.len() as u64,
            entries: doc.entries.len(),
        })
    }

    /// Append `ops` to the active journal as one write, then apply the
    /// group-commit [`FsyncPolicy`].
    ///
    /// Errors if no rotation has happened in this process yet — appends are
    /// only meaningful relative to a snapshot this process wrote.
    ///
    /// Failure semantics (what makes the persist hook's retry loop sound):
    /// a failed *write* truncates the file back to the last record
    /// boundary before the next attempt, so a torn partial batch never
    /// survives mid-file; a failed *fsync* leaves the batch written, so a
    /// retry may duplicate it — replay is duplicate-tolerant (a re-admit
    /// of a present entry and an evict of an absent one are both skipped).
    pub fn append(&self, ops: &[JournalOp<'_>]) -> io::Result<u64> {
        if ops.is_empty() {
            return Ok(self.journal_bytes());
        }
        let action = self.fault(FaultSite::JournalAppend);
        let mut inner = self.inner.lock().expect("store lock");
        let fsync = inner.fsync;
        inner.max_batch = inner.max_batch.max(ops.len() as u64);
        let active = inner
            .active
            .as_mut()
            .ok_or_else(|| io::Error::other("no active journal: rotate() first"))?;
        active.repair()?;
        let mut buf = Vec::new();
        let mut last_record_start = 0usize;
        for op in ops {
            last_record_start = buf.len();
            buf.extend(encode_record(op));
        }
        match action {
            FaultAction::Proceed => {}
            FaultAction::Error(msg) => return Err(io::Error::other(msg)),
            FaultAction::ShortWrite { keep } => {
                let keep = keep.min(buf.len());
                let _ = active.file.write_all(&buf[..keep]);
                active.dirty = true;
                return Err(io::Error::other("injected short journal write"));
            }
            FaultAction::TornRecord => {
                // Cut strictly inside the batch's final record (frames are
                // ≥ 13 bytes, so the midpoint is past the frame start and
                // before its end).
                let cut = last_record_start + (buf.len() - last_record_start) / 2;
                let _ = active.file.write_all(&buf[..cut]);
                active.dirty = true;
                return Err(io::Error::other("injected torn journal record"));
            }
            FaultAction::Panic => unreachable!("handled in fault()"),
        }
        if let Err(e) = active.file.write_all(&buf) {
            // Position unknown after a real short write: repair lazily on
            // the next append.
            active.dirty = true;
            return Err(e);
        }
        active.bytes += buf.len() as u64;
        active.records += ops.len() as u64;
        active.unsynced_records += ops.len() as u64;
        let due = match fsync {
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryN(n) => active.unsynced_records >= n,
            FsyncPolicy::IntervalMs(ms) => {
                active.last_sync.elapsed() >= std::time::Duration::from_millis(ms)
            }
        };
        let bytes = active.bytes;
        if due {
            drop(inner);
            self.sync()?;
        }
        Ok(bytes)
    }

    /// Fsync the active journal (planned shutdowns, group commits due
    /// under the [`FsyncPolicy`], and explicit durability points).
    pub fn sync(&self) -> io::Result<()> {
        self.fault_gate(FaultSite::JournalSync)?;
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(active) = inner.active.as_mut() {
            active.file.sync_all()?;
            active.mark_synced();
        }
        Ok(())
    }

    /// Bytes in the active journal (0 before the first rotation) — the
    /// size-threshold input of the auto-snapshot trigger.
    pub fn journal_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.bytes)
    }

    /// Records appended to the active journal since the last rotation.
    pub fn journal_records(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.records)
    }

    /// Bytes of the active journal known to be on stable storage (the
    /// last fsync's high-water mark; includes the header).
    pub fn journal_synced_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.synced_bytes)
    }

    /// Records of the active journal known to be on stable storage.
    pub fn journal_synced_records(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.synced_records)
    }

    /// Largest single append batch seen by this store — the `B` term of
    /// the [`FsyncPolicy`] bounded-loss guarantee.
    pub fn max_append_batch(&self) -> u64 {
        self.inner.lock().expect("store lock").max_batch
    }

    /// Generation of the active journal (None before the first rotation).
    pub fn generation(&self) -> Option<u64> {
        self.inner.lock().expect("store lock").active.as_ref().map(|a| a.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::QueryKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gc_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn doc_with(universe: u64, fp: u64) -> SnapshotDoc {
        SnapshotDoc {
            dataset_fingerprint: fp,
            universe,
            cost: (0..universe).map(|i| (i as f64, false)).collect(),
            ..SnapshotDoc::default()
        }
    }

    #[test]
    fn fresh_dir_is_cold() {
        let dir = tmpdir("cold");
        let store = CacheStore::open(&dir).unwrap();
        assert!(matches!(store.load(), LoadOutcome::Cold { .. }));
        assert_eq!(store.journal_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_then_load_roundtrips() {
        let dir = tmpdir("rotate");
        let store = CacheStore::open(&dir).unwrap();
        let info = store.rotate(&doc_with(4, 0xAB)).unwrap();
        assert_eq!(info.generation, 1);

        let g = graph_from_parts(&[Label(1)], &[]).unwrap();
        store
            .append(&[JournalOp::Admit {
                orig_id: 0,
                now: 1,
                kind: QueryKind::Subgraph,
                base_tests: 2,
                base_cost: 3,
                graph: &g,
                answer: &[1, 3],
            }])
            .unwrap();
        store.append(&[JournalOp::Evict { orig_id: 0, now: 2 }]).unwrap();
        store.sync().unwrap();
        assert_eq!(store.journal_records(), 2);

        // A second store (a "restarted process") sees the same state.
        let store2 = CacheStore::open(&dir).unwrap();
        match store2.load() {
            LoadOutcome::Warm(state) => {
                assert_eq!(state.generation, 1);
                assert_eq!(state.doc.universe, 4);
                assert_eq!(state.journal.len(), 2);
            }
            LoadOutcome::Cold { reason } => panic!("expected warm, got cold: {reason}"),
        }
        // And its next rotation advances the generation past ours.
        let info2 = store2.rotate(&doc_with(4, 0xAB)).unwrap();
        assert_eq!(info2.generation, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_without_rotation_errors() {
        let dir = tmpdir("norot");
        let store = CacheStore::open(&dir).unwrap();
        assert!(store.append(&[JournalOp::Evict { orig_id: 0, now: 0 }]).is_err());
        assert!(store.append(&[]).is_ok(), "empty append is a no-op");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_loads_cold() {
        let dir = tmpdir("corrupt_snap");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(CacheStore::open(&dir).unwrap().load(), LoadOutcome::Cold { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_loads_cold() {
        let dir = tmpdir("corrupt_jrnl");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        store
            .append(&[JournalOp::Admit {
                orig_id: 0,
                now: 1,
                kind: QueryKind::Subgraph,
                base_tests: 1,
                base_cost: 1,
                graph: &g,
                answer: &[0],
            }])
            .unwrap();
        store.sync().unwrap();
        let path = dir.join(journal_file(1));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(CacheStore::open(&dir).unwrap().load(), LoadOutcome::Cold { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_from_interrupted_rotation_is_ignored() {
        let dir = tmpdir("stale");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        // Simulate a crash mid-rotation: a journal for generation 2 exists
        // but the snapshot still says generation 1.
        fs::write(
            dir.join(journal_file(2)),
            encode_header(&JournalHeader { generation: 2, dataset_fingerprint: 1, universe: 2 }),
        )
        .unwrap();
        let store2 = CacheStore::open(&dir).unwrap();
        match store2.load() {
            LoadOutcome::Warm(state) => assert_eq!(state.generation, 1),
            LoadOutcome::Cold { reason } => panic!("expected warm, got cold: {reason}"),
        }
        // Next rotation must skip past the stale generation 2.
        assert_eq!(store2.rotate(&doc_with(2, 1)).unwrap().generation, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    fn admit_op(g: &gc_graph::Graph, i: u32) -> JournalOp<'_> {
        JournalOp::Admit {
            orig_id: i,
            now: i as u64 + 1,
            kind: QueryKind::Subgraph,
            base_tests: 1,
            base_cost: 1,
            graph: g,
            answer: &[0],
        }
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmpdir("torn_tail");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        for i in 0..3 {
            store.append(&[admit_op(&g, i)]).unwrap();
        }
        store.sync().unwrap();
        // Simulate a crash mid-append: cut the file inside the last record.
        let path = dir.join(journal_file(1));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match CacheStore::open(&dir).unwrap().load() {
            LoadOutcome::Warm(state) => {
                assert_eq!(state.journal.len(), 2, "torn last record dropped");
                assert_eq!(state.torn_tail_bytes, (bytes.len() - 3) - tail_start(&bytes, 2));
            }
            LoadOutcome::Cold { reason } => panic!("expected warm with torn tail: {reason}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Byte offset where record `n` (0-based) starts in a journal image.
    fn tail_start(bytes: &[u8], n: usize) -> usize {
        let mut off = crate::journal::HEADER_LEN;
        for _ in 0..n {
            let len =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
                    as usize;
            off += 12 + len;
        }
        off
    }

    #[test]
    fn group_commit_bounds_loss_and_recovers_exact_prefix() {
        let dir = tmpdir("group_commit");
        let store = CacheStore::open(&dir).unwrap();
        store.set_fsync_policy(FsyncPolicy::EveryN(4));
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        let total = 25u32;
        for i in 0..total {
            store.append(&[admit_op(&g, i)]).unwrap();
        }
        // 25 single-record batches under EveryN(4): 24 synced, 1 pending.
        assert_eq!(store.journal_synced_records(), 24);
        let synced_bytes = store.journal_synced_bytes() as usize;
        let synced_records = store.journal_synced_records();
        let bound = 4 - 1 + store.max_append_batch();

        // "Crash" at every post-sync cut point: recovery must yield an
        // exact prefix of the appended ops, at least everything synced,
        // and never lose more than the documented bound.
        let path = dir.join(journal_file(1));
        let bytes = fs::read(&path).unwrap();
        for cut in synced_bytes..=bytes.len() {
            fs::write(&path, &bytes[..cut]).unwrap();
            match CacheStore::open(&dir).unwrap().load() {
                LoadOutcome::Warm(state) => {
                    let n = state.journal.len() as u64;
                    assert!(n >= synced_records, "cut {cut}: lost synced records");
                    assert!(total as u64 - n <= bound, "cut {cut}: lost more than bound");
                    for (i, rec) in state.journal.iter().enumerate() {
                        match rec {
                            JournalRecord::Admit { orig_id, .. } => {
                                assert_eq!(*orig_id, i as u32, "cut {cut}: not a prefix")
                            }
                            other => panic!("cut {cut}: unexpected record {other:?}"),
                        }
                    }
                }
                LoadOutcome::Cold { reason } => panic!("cut {cut}: went cold: {reason}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_policy_syncs_after_elapse() {
        let dir = tmpdir("interval");
        let store = CacheStore::open(&dir).unwrap();
        store.set_fsync_policy(FsyncPolicy::IntervalMs(1));
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(3));
        store.append(&[admit_op(&g, 0)]).unwrap();
        assert_eq!(store.journal_synced_records(), 1, "elapsed interval forces group commit");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_faults_repair_and_retry_cleanly() {
        use crate::faults::{Failpoint, FaultPlan, FaultSite};
        let dir = tmpdir("faulty_append");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        let plan = Arc::new(FaultPlan::seeded(7));
        store.set_fault_plan(Some(plan.clone()));

        // A transient error: nothing written, retry succeeds.
        plan.arm(FaultSite::JournalAppend, Failpoint::ErrOnce);
        assert!(store.append(&[admit_op(&g, 0)]).is_err());
        store.append(&[admit_op(&g, 0)]).unwrap();

        // A torn record: partial bytes hit the file, the next append
        // truncates them away before writing.
        plan.arm(FaultSite::JournalAppend, Failpoint::TornRecord);
        assert!(store.append(&[admit_op(&g, 1)]).is_err());
        store.append(&[admit_op(&g, 1)]).unwrap();

        // A short write: same repair path.
        plan.arm(FaultSite::JournalAppend, Failpoint::ShortWrite { keep: 2 });
        assert!(store.append(&[admit_op(&g, 2)]).is_err());
        store.append(&[admit_op(&g, 2)]).unwrap();

        store.sync().unwrap();
        assert_eq!(plan.fired(), 3);

        // The journal holds exactly the three successful appends.
        match CacheStore::open(&dir).unwrap().load() {
            LoadOutcome::Warm(state) => {
                assert_eq!(state.journal.len(), 3);
                assert_eq!(state.torn_tail_bytes, 0, "repair removed every torn byte");
            }
            LoadOutcome::Cold { reason } => panic!("expected warm: {reason}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_rotation_faults_fail_closed() {
        use crate::faults::{Failpoint, FaultPlan, FaultSite};
        let dir = tmpdir("faulty_rotate");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let plan = Arc::new(FaultPlan::seeded(7));
        store.set_fault_plan(Some(plan.clone()));

        for point in [Failpoint::ErrOnce, Failpoint::TornRecord, Failpoint::ShortWrite { keep: 10 }]
        {
            plan.arm(FaultSite::SnapshotWrite, point);
            assert!(store.rotate(&doc_with(2, 1)).is_err());
            // The committed pair survives every failed rotation attempt.
            match CacheStore::open(&dir).unwrap().load() {
                LoadOutcome::Warm(state) => assert_eq!(state.generation, 1),
                LoadOutcome::Cold { reason } => panic!("rotation fault corrupted store: {reason}"),
            }
        }
        for site in [FaultSite::JournalCreate, FaultSite::DirSync, FaultSite::Rename] {
            plan.arm(site, Failpoint::ErrOnce);
            assert!(store.rotate(&doc_with(2, 1)).is_err());
            match CacheStore::open(&dir).unwrap().load() {
                LoadOutcome::Warm(state) => assert_eq!(state.generation, 1),
                LoadOutcome::Cold { reason } => panic!("rotation fault corrupted store: {reason}"),
            }
        }
        // With the plan drained, rotation works and generations advanced
        // past every failed attempt's number.
        store.set_fault_plan(None);
        let info = store.rotate(&doc_with(2, 1)).unwrap();
        assert!(info.generation > 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_resets_journal() {
        let dir = tmpdir("reset");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(1, 1)).unwrap();
        store.append(&[JournalOp::Evict { orig_id: 9, now: 1 }]).unwrap();
        assert_eq!(store.journal_records(), 1);
        store.rotate(&doc_with(1, 1)).unwrap();
        assert_eq!(store.journal_records(), 0);
        match store.load() {
            LoadOutcome::Warm(state) => assert!(state.journal.is_empty()),
            LoadOutcome::Cold { reason } => panic!("expected warm: {reason}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
