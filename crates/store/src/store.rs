//! [`CacheStore`]: a persistence directory holding one snapshot plus its
//! append-only journal.
//!
//! ## Crash safety
//!
//! A *rotation* ([`CacheStore::rotate`]) makes the next generation durable
//! in an order that leaves a consistent pair on disk no matter where a
//! crash lands:
//!
//! 1. the new snapshot is written to a temp file and fsynced;
//! 2. the new generation's journal (`journal-<gen>.gcj`, header only) is
//!    created and fsynced;
//! 3. the temp file is atomically renamed over `snapshot.gcs` — the commit
//!    point;
//! 4. stale journals of older generations are deleted (best-effort).
//!
//! The directory itself is fsynced after steps 2 and 3, so the ordering
//! holds across power loss, not just process crashes: step 4's deletions
//! can never reach disk ahead of the rename they depend on.
//!
//! A crash before step 3 leaves the old snapshot with its old journal
//! (both intact); after step 3 the new pair is live. [`CacheStore::load`]
//! always pairs `snapshot.gcs` with the journal *named by the snapshot's
//! own generation*, so a leftover journal from an interrupted rotation is
//! simply ignored.
//!
//! ## Fail-closed recovery
//!
//! [`CacheStore::load`] never guesses: a missing snapshot, a checksum or
//! framing failure anywhere in either file, or a journal whose header does
//! not match the snapshot's generation all come back as
//! [`LoadOutcome::Cold`] with the reason — the caller starts cold and the
//! next rotation overwrites the bad state. Corruption can cost warmth,
//! never correctness.

use crate::journal::{
    decode_journal, encode_header, encode_record, JournalHeader, JournalOp, JournalRecord,
};
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotDoc};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File name of the current snapshot.
const SNAPSHOT_FILE: &str = "snapshot.gcs";
/// Temp name the next snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.gcs.tmp";

fn journal_file(generation: u64) -> String {
    format!("journal-{generation}.gcj")
}

/// Fsync a directory so renames/creates/unlinks inside it are durable
/// (opening a directory read-only and `sync_all`ing it is the portable
/// POSIX idiom; on platforms where directories cannot be opened this
/// degrades to a no-op error we propagate).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Result of one rotation: what was made durable.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotInfo {
    /// The new generation number.
    pub generation: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Entries captured in the snapshot.
    pub entries: usize,
}

/// Result of [`CacheStore::load`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// Nothing usable on disk — start cold. `reason` says why (missing
    /// files are normal on first boot; anything else names the corruption).
    Cold {
        /// Why the store could not be restored.
        reason: String,
    },
    /// A valid snapshot (and its journal's records, possibly empty) —
    /// replay `doc` then `journal` to resume warm.
    Warm(Box<RecoveredState>),
}

/// A validated snapshot + journal pair ready for replay.
#[derive(Debug)]
pub struct RecoveredState {
    /// The decoded snapshot.
    pub doc: SnapshotDoc,
    /// Generation of the snapshot/journal pair.
    pub generation: u64,
    /// Journal records appended after the snapshot, in append order.
    pub journal: Vec<JournalRecord>,
}

struct Inner {
    /// Generation of the currently active journal, if a rotation happened
    /// in this process.
    active: Option<ActiveJournal>,
    /// Highest generation ever observed (from disk or rotations), so the
    /// next rotation picks a strictly larger one.
    last_generation: u64,
}

struct ActiveJournal {
    generation: u64,
    file: File,
    bytes: u64,
    records: u64,
}

/// A persistence directory for one cache instance.
///
/// All methods take `&self` — appends and rotations serialize on an
/// internal mutex, so one store can be shared (behind an `Arc`) by the
/// concurrent front-end's query threads.
pub struct CacheStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("store lock");
        f.debug_struct("CacheStore")
            .field("dir", &self.dir)
            .field("generation", &inner.active.as_ref().map(|a| a.generation))
            .field("journal_bytes", &inner.active.as_ref().map_or(0, |a| a.bytes))
            .finish()
    }
}

impl CacheStore {
    /// Open (creating if needed) the persistence directory `dir`.
    ///
    /// Opening only scans for the highest existing generation; it does not
    /// read cache state (that is [`CacheStore::load`]) and does not accept
    /// appends until the first [`CacheStore::rotate`] establishes which
    /// snapshot the journal extends.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut last_generation = 0u64;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen_str) =
                name.strip_prefix("journal-").and_then(|s| s.strip_suffix(".gcj"))
            {
                if let Ok(g) = gen_str.parse::<u64>() {
                    last_generation = last_generation.max(g);
                }
            }
        }
        // The snapshot's generation also bounds the next one (covers a dir
        // where stale journals were cleaned but the snapshot remains).
        if let Ok(bytes) = fs::read(dir.join(SNAPSHOT_FILE)) {
            if let Ok((_, g)) = decode_snapshot(&bytes) {
                last_generation = last_generation.max(g);
            }
        }
        Ok(CacheStore { dir, inner: Mutex::new(Inner { active: None, last_generation }) })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read and strictly validate the snapshot + journal pair.
    pub fn load(&self) -> LoadOutcome {
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let bytes = match fs::read(&snap_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return LoadOutcome::Cold { reason: "no snapshot on disk".into() }
            }
            Err(e) => return LoadOutcome::Cold { reason: format!("snapshot unreadable: {e}") },
        };
        let (doc, generation) = match decode_snapshot(&bytes) {
            Ok(v) => v,
            Err(e) => return LoadOutcome::Cold { reason: format!("snapshot rejected: {e}") },
        };
        let journal_path = self.dir.join(journal_file(generation));
        let journal_bytes = match fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) => {
                return LoadOutcome::Cold {
                    reason: format!("journal for generation {generation} unreadable: {e}"),
                }
            }
        };
        let (header, journal) = match decode_journal(&journal_bytes) {
            Ok(v) => v,
            Err(e) => return LoadOutcome::Cold { reason: format!("journal rejected: {e}") },
        };
        let expected = JournalHeader {
            generation,
            dataset_fingerprint: doc.dataset_fingerprint,
            universe: doc.universe,
        };
        if header != expected {
            return LoadOutcome::Cold {
                reason: format!("journal header {header:?} does not match snapshot {expected:?}"),
            };
        }
        LoadOutcome::Warm(Box::new(RecoveredState { doc, generation, journal }))
    }

    /// Durably write `doc` as the next generation's snapshot and open a
    /// fresh journal for it (see the module docs for the crash-safe order).
    /// Subsequent [`CacheStore::append`] calls extend the new journal.
    pub fn rotate(&self, doc: &SnapshotDoc) -> io::Result<SnapshotInfo> {
        let mut inner = self.inner.lock().expect("store lock");
        let generation = inner.last_generation + 1;

        // 1. Stage the snapshot.
        let image = encode_snapshot(doc, generation);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
        drop(f);

        // 2. Create the new journal with its header; sync the directory so
        //    the journal's dirent is durable before the rename can commit.
        let header = JournalHeader {
            generation,
            dataset_fingerprint: doc.dataset_fingerprint,
            universe: doc.universe,
        };
        let journal_path = self.dir.join(journal_file(generation));
        let mut journal =
            OpenOptions::new().create(true).write(true).truncate(true).open(&journal_path)?;
        let header_bytes = encode_header(&header);
        journal.write_all(&header_bytes)?;
        journal.sync_all()?;
        sync_dir(&self.dir)?;

        // 3. Commit: atomic rename, made durable by a directory sync —
        //    without it, a power loss could persist step 4's deletions
        //    while losing the rename, leaving no journal for the old
        //    generation.
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&self.dir)?;

        // 4. Clean stale journals (best-effort; leftovers are ignored by
        //    `load`, which pairs by the snapshot's generation).
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(g) = name
                    .strip_prefix("journal-")
                    .and_then(|s| s.strip_suffix(".gcj"))
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if g != generation {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }

        inner.last_generation = generation;
        inner.active = Some(ActiveJournal {
            generation,
            file: journal,
            bytes: header_bytes.len() as u64,
            records: 0,
        });
        Ok(SnapshotInfo {
            generation,
            snapshot_bytes: image.len() as u64,
            entries: doc.entries.len(),
        })
    }

    /// Append `ops` to the active journal as one write.
    ///
    /// Errors if no rotation has happened in this process yet — appends are
    /// only meaningful relative to a snapshot this process wrote.
    pub fn append(&self, ops: &[JournalOp<'_>]) -> io::Result<u64> {
        if ops.is_empty() {
            return Ok(self.journal_bytes());
        }
        let mut inner = self.inner.lock().expect("store lock");
        let active = inner
            .active
            .as_mut()
            .ok_or_else(|| io::Error::other("no active journal: rotate() first"))?;
        let mut buf = Vec::new();
        for op in ops {
            buf.extend(encode_record(op));
        }
        active.file.write_all(&buf)?;
        active.bytes += buf.len() as u64;
        active.records += ops.len() as u64;
        Ok(active.bytes)
    }

    /// Flush the active journal to disk (used before planned shutdowns;
    /// appends themselves are buffered by the OS, not fsynced per record).
    pub fn sync(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("store lock");
        if let Some(active) = inner.active.as_ref() {
            active.file.sync_all()?;
        }
        Ok(())
    }

    /// Bytes in the active journal (0 before the first rotation) — the
    /// size-threshold input of the auto-snapshot trigger.
    pub fn journal_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.bytes)
    }

    /// Records appended to the active journal since the last rotation.
    pub fn journal_records(&self) -> u64 {
        self.inner.lock().expect("store lock").active.as_ref().map_or(0, |a| a.records)
    }

    /// Generation of the active journal (None before the first rotation).
    pub fn generation(&self) -> Option<u64> {
        self.inner.lock().expect("store lock").active.as_ref().map(|a| a.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::QueryKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gc_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn doc_with(universe: u64, fp: u64) -> SnapshotDoc {
        SnapshotDoc {
            dataset_fingerprint: fp,
            universe,
            cost: (0..universe).map(|i| (i as f64, false)).collect(),
            ..SnapshotDoc::default()
        }
    }

    #[test]
    fn fresh_dir_is_cold() {
        let dir = tmpdir("cold");
        let store = CacheStore::open(&dir).unwrap();
        assert!(matches!(store.load(), LoadOutcome::Cold { .. }));
        assert_eq!(store.journal_bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_then_load_roundtrips() {
        let dir = tmpdir("rotate");
        let store = CacheStore::open(&dir).unwrap();
        let info = store.rotate(&doc_with(4, 0xAB)).unwrap();
        assert_eq!(info.generation, 1);

        let g = graph_from_parts(&[Label(1)], &[]).unwrap();
        store
            .append(&[JournalOp::Admit {
                orig_id: 0,
                now: 1,
                kind: QueryKind::Subgraph,
                base_tests: 2,
                base_cost: 3,
                graph: &g,
                answer: &[1, 3],
            }])
            .unwrap();
        store.append(&[JournalOp::Evict { orig_id: 0, now: 2 }]).unwrap();
        store.sync().unwrap();
        assert_eq!(store.journal_records(), 2);

        // A second store (a "restarted process") sees the same state.
        let store2 = CacheStore::open(&dir).unwrap();
        match store2.load() {
            LoadOutcome::Warm(state) => {
                assert_eq!(state.generation, 1);
                assert_eq!(state.doc.universe, 4);
                assert_eq!(state.journal.len(), 2);
            }
            LoadOutcome::Cold { reason } => panic!("expected warm, got cold: {reason}"),
        }
        // And its next rotation advances the generation past ours.
        let info2 = store2.rotate(&doc_with(4, 0xAB)).unwrap();
        assert_eq!(info2.generation, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_without_rotation_errors() {
        let dir = tmpdir("norot");
        let store = CacheStore::open(&dir).unwrap();
        assert!(store.append(&[JournalOp::Evict { orig_id: 0, now: 0 }]).is_err());
        assert!(store.append(&[]).is_ok(), "empty append is a no-op");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_loads_cold() {
        let dir = tmpdir("corrupt_snap");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(CacheStore::open(&dir).unwrap().load(), LoadOutcome::Cold { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_loads_cold() {
        let dir = tmpdir("corrupt_jrnl");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        let g = graph_from_parts(&[Label(0)], &[]).unwrap();
        store
            .append(&[JournalOp::Admit {
                orig_id: 0,
                now: 1,
                kind: QueryKind::Subgraph,
                base_tests: 1,
                base_cost: 1,
                graph: &g,
                answer: &[0],
            }])
            .unwrap();
        store.sync().unwrap();
        let path = dir.join(journal_file(1));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(CacheStore::open(&dir).unwrap().load(), LoadOutcome::Cold { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_from_interrupted_rotation_is_ignored() {
        let dir = tmpdir("stale");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(2, 1)).unwrap();
        // Simulate a crash mid-rotation: a journal for generation 2 exists
        // but the snapshot still says generation 1.
        fs::write(
            dir.join(journal_file(2)),
            encode_header(&JournalHeader { generation: 2, dataset_fingerprint: 1, universe: 2 }),
        )
        .unwrap();
        let store2 = CacheStore::open(&dir).unwrap();
        match store2.load() {
            LoadOutcome::Warm(state) => assert_eq!(state.generation, 1),
            LoadOutcome::Cold { reason } => panic!("expected warm, got cold: {reason}"),
        }
        // Next rotation must skip past the stale generation 2.
        assert_eq!(store2.rotate(&doc_with(2, 1)).unwrap().generation, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_resets_journal() {
        let dir = tmpdir("reset");
        let store = CacheStore::open(&dir).unwrap();
        store.rotate(&doc_with(1, 1)).unwrap();
        store.append(&[JournalOp::Evict { orig_id: 9, now: 1 }]).unwrap();
        assert_eq!(store.journal_records(), 1);
        store.rotate(&doc_with(1, 1)).unwrap();
        assert_eq!(store.journal_records(), 0);
        match store.load() {
            LoadOutcome::Warm(state) => assert!(state.journal.is_empty()),
            LoadOutcome::Cold { reason } => panic!("expected warm: {reason}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
