//! The versioned, checksummed binary snapshot format.
//!
//! A snapshot is one self-contained file holding everything a cache needs to
//! resume warm: every cached entry (query graph, kind, exact answer set,
//! base costs, accumulated statistics), the global statistics counters, the
//! per-graph cost-model estimates, and the window/clock state. Secondary
//! structures (feature vectors, verification profiles, fingerprints, the
//! containment indexes) are deliberately **not** persisted — they are
//! recomputed deterministically from the entries through the cache's normal
//! insert paths, so the on-disk format stays decoupled from the in-memory
//! index layout.
//!
//! ## File layout
//!
//! ```text
//! magic "GCSNAP01"  8 bytes
//! version           u32      (FORMAT_VERSION)
//! generation        u64      (rotation counter; ties the journal to us)
//! body length       u64
//! body              ...      (see SnapshotDoc encode)
//! crc64             u64      (over everything before it)
//! ```
//!
//! Decoding is strict fail-closed: wrong magic or version, a length that
//! does not match the file, a checksum mismatch, malformed graphs,
//! out-of-universe answer indices or trailing bytes all return an error —
//! the recovery path then starts cold instead of guessing.

use crate::wire::{crc64, ByteReader, ByteWriter, WireError, WireResult};
use gc_graph::{graph_from_parts, Graph, Label};
use gc_method::{DatasetOp, QueryKind};

/// Magic prefix of snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"GCSNAP01";

/// Current on-disk format version (bumped on incompatible layout changes).
/// Version 2 added dynamic-dataset state: the base dataset fingerprint, the
/// dataset generation counter and the mutation op log.
pub const FORMAT_VERSION: u32 = 2;

/// Longest accepted counter/policy name (corruption guard).
const MAX_NAME: usize = 256;

/// Portable accumulated statistics of one cached entry (mirrors the
/// kernel's `EntryStats` without depending on it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryStatsRecord {
    /// Logical admission time.
    pub inserted_at: u64,
    /// Logical time of the last hit.
    pub last_used: u64,
    /// Exact-match hits served.
    pub exact_hits: u64,
    /// Sub-case hits served.
    pub sub_hits: u64,
    /// Super-case hits served.
    pub super_hits: u64,
    /// Total sub-iso tests saved for other queries.
    pub tests_saved: u64,
    /// Total estimated verifier steps saved.
    pub cost_saved: f64,
}

/// One cached entry, self-contained: everything needed to re-admit it
/// through the cache's normal insert path.
#[derive(Debug, Clone)]
pub struct EntryRecord {
    /// The entry's id in the *originating* cache (shard-encoded for the
    /// concurrent front-end). Only used to connect journal evictions to
    /// their admissions during replay; restored entries get fresh ids.
    pub orig_id: u32,
    /// The cached query graph.
    pub graph: Graph,
    /// Query kind the answer corresponds to.
    pub kind: QueryKind,
    /// Sorted member indices of the exact answer set over the dataset
    /// universe.
    pub answer: Vec<u32>,
    /// `|C_M|` when the query was first executed.
    pub base_tests: u64,
    /// Verifier steps spent when first executed.
    pub base_cost: u64,
    /// Accumulated statistics (drives warm replacement-policy state).
    pub stats: EntryStatsRecord,
}

/// The decoded contents of a snapshot file.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDoc {
    /// Content fingerprint of the dataset the cache served **at snapshot
    /// time** (after all logged mutations) — a snapshot is only restored
    /// over the identical dataset state.
    pub dataset_fingerprint: u64,
    /// Content fingerprint of the dataset *as loaded* (generation 0).
    /// Restore starts from the base dataset, replays
    /// [`SnapshotDoc::dataset_ops`], and then requires the result to match
    /// [`SnapshotDoc::dataset_fingerprint`].
    pub base_fingerprint: u64,
    /// Dataset generation (mutation count) at snapshot time.
    pub dataset_generation: u64,
    /// The dataset mutation log since load, in application order. Length
    /// must equal [`SnapshotDoc::dataset_generation`].
    pub dataset_ops: Vec<DatasetOp>,
    /// Dataset size (answer-set universe) at snapshot time, i.e. after the
    /// op log.
    pub universe: u64,
    /// Logical clock (query sequence number) at snapshot time.
    pub clock: u64,
    /// Admissions pending in the replacement window at snapshot time.
    pub window_pending: u32,
    /// Replacement policy name at snapshot time (informational; restoring
    /// under a different policy is allowed and reported).
    pub policy_name: String,
    /// Global statistics as named counters — self-describing, so adding a
    /// counter never invalidates old snapshots (unknown names are ignored,
    /// missing names read as zero).
    pub stats: Vec<(String, u64)>,
    /// Per-dataset-graph cost-model state: `(estimate, observed)`, indexed
    /// by graph id. Length must equal `universe`.
    pub cost: Vec<(f64, bool)>,
    /// The cached entries, in originating slot order.
    pub entries: Vec<EntryRecord>,
}

// ---- shared field codecs (also used by the journal) -------------------------

pub(crate) fn put_kind(w: &mut ByteWriter, kind: QueryKind) {
    w.put_u8(match kind {
        QueryKind::Subgraph => 0,
        QueryKind::Supergraph => 1,
    });
}

pub(crate) fn get_kind(r: &mut ByteReader<'_>) -> WireResult<QueryKind> {
    match r.get_u8()? {
        0 => Ok(QueryKind::Subgraph),
        1 => Ok(QueryKind::Supergraph),
        other => Err(WireError::new(format!("unknown query kind tag {other}"))),
    }
}

pub(crate) fn put_graph(w: &mut ByteWriter, g: &Graph) {
    w.put_u32(g.vertex_count() as u32);
    for v in g.vertices() {
        w.put_u32(g.label(v).0);
    }
    w.put_u32(g.edge_count() as u32);
    for (u, v) in g.edges() {
        w.put_u32(u);
        w.put_u32(v);
    }
}

pub(crate) fn get_graph(r: &mut ByteReader<'_>) -> WireResult<Graph> {
    let n = r.get_count(4)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(Label(r.get_u32()?));
    }
    let m = r.get_count(8)?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        edges.push((r.get_u32()?, r.get_u32()?));
    }
    graph_from_parts(&labels, &edges).map_err(|e| WireError::new(format!("malformed graph: {e}")))
}

pub(crate) fn put_answer(w: &mut ByteWriter, answer: &[u32]) {
    w.put_u32(answer.len() as u32);
    for &i in answer {
        w.put_u32(i);
    }
}

/// Read a sorted answer-index list, validating order and the universe bound
/// (an out-of-range index would otherwise panic deep inside `BitSet`).
pub(crate) fn get_answer(r: &mut ByteReader<'_>, universe: u64) -> WireResult<Vec<u32>> {
    let n = r.get_count(4)?;
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let i = r.get_u32()?;
        if u64::from(i) >= universe {
            return Err(WireError::new(format!("answer index {i} outside universe {universe}")));
        }
        if prev.is_some_and(|p| p >= i) {
            return Err(WireError::new("answer indices not strictly ascending"));
        }
        prev = Some(i);
        out.push(i);
    }
    Ok(out)
}

const OP_INSERT: u8 = 0;
const OP_REMOVE: u8 = 1;

pub(crate) fn put_dataset_op(w: &mut ByteWriter, op: &DatasetOp) {
    match op {
        DatasetOp::Insert(g) => {
            w.put_u8(OP_INSERT);
            put_graph(w, g);
        }
        DatasetOp::Remove(gid) => {
            w.put_u8(OP_REMOVE);
            w.put_u32(*gid);
        }
    }
}

/// Read one dataset mutation. `universe` bounds remove ids: the universe
/// only ever grows, so a removed id is always below the final slot count.
pub(crate) fn get_dataset_op(r: &mut ByteReader<'_>, universe: u64) -> WireResult<DatasetOp> {
    match r.get_u8()? {
        OP_INSERT => Ok(DatasetOp::Insert(get_graph(r)?)),
        OP_REMOVE => {
            let gid = r.get_u32()?;
            if u64::from(gid) >= universe {
                return Err(WireError::new(format!(
                    "removed graph id {gid} outside universe {universe}"
                )));
            }
            Ok(DatasetOp::Remove(gid))
        }
        other => Err(WireError::new(format!("unknown dataset op tag {other}"))),
    }
}

fn put_entry(w: &mut ByteWriter, e: &EntryRecord) {
    w.put_u32(e.orig_id);
    put_kind(w, e.kind);
    w.put_u64(e.base_tests);
    w.put_u64(e.base_cost);
    w.put_u64(e.stats.inserted_at);
    w.put_u64(e.stats.last_used);
    w.put_u64(e.stats.exact_hits);
    w.put_u64(e.stats.sub_hits);
    w.put_u64(e.stats.super_hits);
    w.put_u64(e.stats.tests_saved);
    w.put_f64(e.stats.cost_saved);
    put_graph(w, &e.graph);
    put_answer(w, &e.answer);
}

fn get_entry(r: &mut ByteReader<'_>, universe: u64) -> WireResult<EntryRecord> {
    let orig_id = r.get_u32()?;
    let kind = get_kind(r)?;
    let base_tests = r.get_u64()?;
    let base_cost = r.get_u64()?;
    let stats = EntryStatsRecord {
        inserted_at: r.get_u64()?,
        last_used: r.get_u64()?,
        exact_hits: r.get_u64()?,
        sub_hits: r.get_u64()?,
        super_hits: r.get_u64()?,
        tests_saved: r.get_u64()?,
        cost_saved: r.get_f64()?,
    };
    let graph = get_graph(r)?;
    let answer = get_answer(r, universe)?;
    Ok(EntryRecord { orig_id, graph, kind, answer, base_tests, base_cost, stats })
}

// ---- whole-file encode/decode -----------------------------------------------

/// Encode `doc` into a complete snapshot file image for `generation`.
pub fn encode_snapshot(doc: &SnapshotDoc, generation: u64) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.put_u64(doc.dataset_fingerprint);
    body.put_u64(doc.base_fingerprint);
    body.put_u64(doc.dataset_generation);
    body.put_u64(doc.universe);
    body.put_u64(doc.clock);
    body.put_u32(doc.window_pending);
    body.put_str(&doc.policy_name);
    body.put_u32(doc.dataset_ops.len() as u32);
    for op in &doc.dataset_ops {
        put_dataset_op(&mut body, op);
    }
    body.put_u32(doc.stats.len() as u32);
    for (name, value) in &doc.stats {
        body.put_str(name);
        body.put_u64(*value);
    }
    body.put_u32(doc.cost.len() as u32);
    for &(est, observed) in &doc.cost {
        body.put_f64(est);
        body.put_u8(u8::from(observed));
    }
    body.put_u32(doc.entries.len() as u32);
    for e in &doc.entries {
        put_entry(&mut body, e);
    }

    let mut file = ByteWriter::new();
    file.put_raw(SNAPSHOT_MAGIC);
    file.put_u32(FORMAT_VERSION);
    file.put_u64(generation);
    file.put_u64(body.len() as u64);
    file.put_raw(body.as_bytes());
    let crc = crc64(file.as_bytes());
    file.put_u64(crc);
    file.into_bytes()
}

/// Decode a snapshot file image; returns the document and its generation.
///
/// Strict: any framing, checksum or content anomaly is an error.
pub fn decode_snapshot(bytes: &[u8]) -> WireResult<(SnapshotDoc, u64)> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(8)? != SNAPSHOT_MAGIC {
        return Err(WireError::new("bad snapshot magic"));
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(WireError::new(format!("unsupported snapshot version {version}")));
    }
    let generation = r.get_u64()?;
    let body_len = r.get_u64()? as usize;
    if r.remaining() != body_len + 8 {
        return Err(WireError::new(format!(
            "snapshot length mismatch: header says {body_len}+8 byte tail, {} remain",
            r.remaining()
        )));
    }
    let checked_len = bytes.len() - 8;
    let stored_crc = u64::from_le_bytes(bytes[checked_len..].try_into().expect("8-byte tail"));
    if crc64(&bytes[..checked_len]) != stored_crc {
        return Err(WireError::new("snapshot checksum mismatch"));
    }

    let mut doc = SnapshotDoc {
        dataset_fingerprint: r.get_u64()?,
        base_fingerprint: r.get_u64()?,
        dataset_generation: r.get_u64()?,
        universe: r.get_u64()?,
        clock: r.get_u64()?,
        window_pending: r.get_u32()?,
        policy_name: r.get_str(MAX_NAME)?,
        ..SnapshotDoc::default()
    };
    let n_ops = r.get_count(5)?;
    if n_ops as u64 != doc.dataset_generation {
        return Err(WireError::new(format!(
            "dataset op log length {n_ops} does not match generation {}",
            doc.dataset_generation
        )));
    }
    for _ in 0..n_ops {
        doc.dataset_ops.push(get_dataset_op(&mut r, doc.universe)?);
    }
    let n_stats = r.get_count(12)?;
    for _ in 0..n_stats {
        let name = r.get_str(MAX_NAME)?;
        let value = r.get_u64()?;
        doc.stats.push((name, value));
    }
    let n_cost = r.get_count(9)?;
    if n_cost as u64 != doc.universe {
        return Err(WireError::new(format!(
            "cost table length {n_cost} does not match universe {}",
            doc.universe
        )));
    }
    for _ in 0..n_cost {
        let est = r.get_f64()?;
        let observed = match r.get_u8()? {
            0 => false,
            1 => true,
            other => return Err(WireError::new(format!("bad observed flag {other}"))),
        };
        doc.cost.push((est, observed));
    }
    let n_entries = r.get_count(1)?;
    for _ in 0..n_entries {
        doc.entries.push(get_entry(&mut r, doc.universe)?);
    }
    // Body parsed; the only bytes left must be the checksum we verified.
    if r.remaining() != 8 {
        return Err(WireError::new(format!(
            "snapshot body length mismatch: {} bytes follow the body",
            r.remaining()
        )));
    }
    Ok((doc, generation))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> SnapshotDoc {
        let g = graph_from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        SnapshotDoc {
            dataset_fingerprint: 0xABCD,
            base_fingerprint: 0xBA5E,
            dataset_generation: 2,
            dataset_ops: vec![
                DatasetOp::Insert(graph_from_parts(&[Label(7)], &[]).unwrap()),
                DatasetOp::Remove(3),
            ],
            universe: 10,
            clock: 42,
            window_pending: 3,
            policy_name: "HD".into(),
            stats: vec![("queries".into(), 100), ("hit_queries".into(), 40)],
            cost: (0..10).map(|i| (i as f64 * 1.5, i % 2 == 0)).collect(),
            entries: vec![EntryRecord {
                orig_id: 7,
                graph: g,
                kind: QueryKind::Subgraph,
                answer: vec![1, 4, 9],
                base_tests: 12,
                base_cost: 340,
                stats: EntryStatsRecord {
                    inserted_at: 5,
                    last_used: 40,
                    exact_hits: 2,
                    sub_hits: 1,
                    super_hits: 0,
                    tests_saved: 99,
                    cost_saved: 12.25,
                },
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let doc = sample_doc();
        let bytes = encode_snapshot(&doc, 9);
        let (back, generation) = decode_snapshot(&bytes).unwrap();
        assert_eq!(generation, 9);
        assert_eq!(back.dataset_fingerprint, doc.dataset_fingerprint);
        assert_eq!(back.base_fingerprint, doc.base_fingerprint);
        assert_eq!(back.dataset_generation, doc.dataset_generation);
        assert_eq!(back.dataset_ops, doc.dataset_ops);
        assert_eq!(back.universe, doc.universe);
        assert_eq!(back.clock, doc.clock);
        assert_eq!(back.window_pending, doc.window_pending);
        assert_eq!(back.policy_name, doc.policy_name);
        assert_eq!(back.stats, doc.stats);
        assert_eq!(back.cost, doc.cost);
        assert_eq!(back.entries.len(), 1);
        let (a, b) = (&back.entries[0], &doc.entries[0]);
        assert_eq!(a.orig_id, b.orig_id);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn every_bit_flip_detected() {
        let bytes = encode_snapshot(&sample_doc(), 1);
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at byte {byte} accepted");
        }
    }

    #[test]
    fn every_truncation_detected() {
        let bytes = encode_snapshot(&sample_doc(), 1);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode_snapshot(&sample_doc(), 1);
        bytes.push(0);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn answer_indices_validated() {
        let mut doc = sample_doc();
        doc.entries[0].answer = vec![3, 11]; // 11 >= universe 10
        let bytes = encode_snapshot(&doc, 1);
        assert!(decode_snapshot(&bytes).is_err());
        doc.entries[0].answer = vec![4, 4]; // not strictly ascending
        let bytes = encode_snapshot(&doc, 1);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn cost_table_must_match_universe() {
        let mut doc = sample_doc();
        doc.cost.pop();
        let bytes = encode_snapshot(&doc, 1);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn dataset_ops_validated() {
        // Op count must match the generation counter.
        let mut doc = sample_doc();
        doc.dataset_generation = 3;
        assert!(decode_snapshot(&encode_snapshot(&doc, 1)).is_err());
        // A removed id outside the universe is rejected.
        let mut doc = sample_doc();
        doc.dataset_ops[1] = DatasetOp::Remove(10);
        assert!(decode_snapshot(&encode_snapshot(&doc, 1)).is_err());
    }

    #[test]
    fn empty_doc_roundtrips() {
        let doc = SnapshotDoc { universe: 0, ..SnapshotDoc::default() };
        let (back, generation) = decode_snapshot(&encode_snapshot(&doc, 0)).unwrap();
        assert_eq!(generation, 0);
        assert!(back.entries.is_empty());
        assert!(back.cost.is_empty());
    }
}
