//! Property tests: random snapshot/journal documents round-trip exactly,
//! and randomly corrupted images (bit flips, truncations, mid-record
//! tears) are always rejected — the fail-closed recovery contract.

use gc_graph::{graph_from_parts, Graph, Label};
use gc_method::QueryKind;
use gc_store::journal::{decode_journal, encode_header, encode_record};
use gc_store::snapshot::{decode_snapshot, encode_snapshot};
use gc_store::{EntryRecord, EntryStatsRecord, JournalHeader, JournalOp, SnapshotDoc};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u32..8, n);
        let edges = if n >= 2 {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(2 * n)).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = gc_graph::GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

const UNIVERSE: u64 = 32;

fn arb_answer() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..UNIVERSE as u32, 0..10).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn arb_entry() -> impl Strategy<Value = EntryRecord> {
    (arb_graph(6), arb_answer(), 0u64..100, 0u64..1000, any::<bool>()).prop_map(
        |(graph, answer, base_tests, base_cost, sup)| EntryRecord {
            orig_id: base_tests as u32,
            graph,
            kind: if sup { QueryKind::Supergraph } else { QueryKind::Subgraph },
            answer,
            base_tests,
            base_cost,
            stats: EntryStatsRecord {
                inserted_at: base_tests,
                last_used: base_tests + 1,
                exact_hits: base_cost % 7,
                sub_hits: base_cost % 5,
                super_hits: base_cost % 3,
                tests_saved: base_cost,
                cost_saved: base_cost as f64 * 0.5,
            },
        },
    )
}

fn arb_doc() -> impl Strategy<Value = SnapshotDoc> {
    (proptest::collection::vec(arb_entry(), 0..6), 0u64..1000, 0u64..u64::MAX).prop_map(
        |(entries, clock, fp)| SnapshotDoc {
            dataset_fingerprint: fp,
            base_fingerprint: fp,
            dataset_generation: 0,
            dataset_ops: Vec::new(),
            universe: UNIVERSE,
            clock,
            window_pending: (clock % 10) as u32,
            policy_name: "HD".into(),
            stats: vec![("queries".into(), clock), ("hit_queries".into(), clock / 2)],
            cost: (0..UNIVERSE).map(|i| (i as f64 * 0.25, i % 2 == 0)).collect(),
            entries,
        },
    )
}

fn docs_equal(a: &SnapshotDoc, b: &SnapshotDoc) -> bool {
    a.dataset_fingerprint == b.dataset_fingerprint
        && a.universe == b.universe
        && a.clock == b.clock
        && a.window_pending == b.window_pending
        && a.policy_name == b.policy_name
        && a.stats == b.stats
        && a.cost == b.cost
        && a.entries.len() == b.entries.len()
        && a.entries.iter().zip(&b.entries).all(|(x, y)| {
            x.orig_id == y.orig_id
                && x.graph == y.graph
                && x.kind == y.kind
                && x.answer == y.answer
                && x.base_tests == y.base_tests
                && x.base_cost == y.base_cost
                && x.stats == y.stats
        })
}

fn journal_image(doc: &SnapshotDoc, records: usize, seed: u64) -> (Vec<u8>, Vec<usize>) {
    let header = JournalHeader {
        generation: 1,
        dataset_fingerprint: doc.dataset_fingerprint,
        universe: doc.universe,
    };
    let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
    let mut bytes = encode_header(&header);
    let mut boundaries = vec![bytes.len()];
    for i in 0..records {
        let rec = if (seed + i as u64).is_multiple_of(3) {
            encode_record(&JournalOp::Evict { orig_id: i as u32, now: seed + i as u64 })
        } else {
            let answer = [0u32, 1 + (seed % (UNIVERSE - 1)) as u32];
            encode_record(&JournalOp::Admit {
                orig_id: i as u32,
                now: seed + i as u64,
                kind: QueryKind::Subgraph,
                base_tests: seed,
                base_cost: seed * 2,
                graph: &g,
                answer: &answer,
            })
        };
        bytes.extend(rec);
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_roundtrip(doc in arb_doc(), generation in 0u64..u64::MAX) {
        let bytes = encode_snapshot(&doc, generation);
        let (back, g) = decode_snapshot(&bytes).expect("own encoding must decode");
        prop_assert_eq!(g, generation);
        prop_assert!(docs_equal(&back, &doc));
    }

    #[test]
    fn snapshot_bit_flips_rejected(doc in arb_doc(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let bytes = encode_snapshot(&doc, 1);
        let mut bad = bytes.clone();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(decode_snapshot(&bad).is_err(), "flip at {}:{} accepted", pos, bit);
    }

    #[test]
    fn snapshot_truncations_rejected(doc in arb_doc(), cut_seed in any::<u64>()) {
        let bytes = encode_snapshot(&doc, 1);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err(), "truncation to {} accepted", cut);
    }

    #[test]
    fn journal_bit_flips_rejected(
        doc in arb_doc(),
        records in 1usize..6,
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (bytes, _) = journal_image(&doc, records, pos_seed % 97);
        prop_assert!(decode_journal(&bytes).is_ok(), "sanity: clean journal decodes");
        let mut bad = bytes.clone();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(decode_journal(&bad).is_err(), "flip at {}:{} accepted", pos, bit);
    }

    #[test]
    fn journal_tears_rejected_boundaries_shorten(
        doc in arb_doc(),
        records in 1usize..6,
        cut_seed in any::<u64>(),
    ) {
        let (bytes, boundaries) = journal_image(&doc, records, cut_seed % 89);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        match decode_journal(&bytes[..cut]) {
            // A cut exactly at a record boundary is a valid shorter journal
            // (append-only semantics); anywhere else must be rejected.
            Ok((_, recs)) => {
                let idx = boundaries.iter().position(|&b| b == cut);
                prop_assert!(idx.is_some(), "mid-record tear at {} accepted", cut);
                prop_assert_eq!(recs.len(), idx.unwrap());
            }
            Err(_) => prop_assert!(!boundaries.contains(&cut) || cut < boundaries[0]),
        }
    }
}
