//! Experiment III (Fig. 3): The Query Journey pipeline anatomy.
//!
//! Reproduces the demo's worked example quantitatively: a cache of 50
//! executed queries over a 100-graph dataset; one instrumented query that
//! enjoys both sub-case and super-case hits; the pipeline invariants
//! (`A = R ∪ S`, `C ⊆ C_M`, `S ∩ C = ∅`) checked and the per-stage counts
//! printed in the figure's order. The paper's instance shows
//! `|C_M| = 75 → |C| = 43`, speedup 1.74.

use gc_bench::write_artifact;
use gc_core::{CacheConfig, GraphCache, PolicyKind};
use gc_demo::run_query_journey;
use gc_method::{Dataset, FtvMethod, QueryKind};
use gc_workload::molecules::{molecule_dataset_with, MoleculeParams};
use gc_workload::{extract_query, nested_chain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct JourneyNumbers {
    sub_hits: usize,
    super_hits: usize,
    cm: usize,
    s: usize,
    s_prime: usize,
    c: usize,
    r: usize,
    a: usize,
    test_speedup: f64,
}

fn main() {
    // Label-homogeneous molecules so Method M's filter keeps a large C_M
    // (the paper's example keeps 75 of 100 graphs).
    let params =
        MoleculeParams { label_weights: vec![(0, 0.85), (1, 0.15)], ..MoleculeParams::default() };
    let dataset = Arc::new(Dataset::new(molecule_dataset_with(100, &params, 1812)));
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(&dataset, 1)),
        PolicyKind::Hd,
        CacheConfig { capacity: 50, window_size: 1, ..CacheConfig::default() },
    )
    .expect("valid config");

    // Warm with a ⊑-chain around the journey query plus unrelated queries.
    let mut rng = StdRng::seed_from_u64(99);
    let chain = nested_chain(dataset.graph(0), &[3, 4, 5, 10, 16], &mut rng);
    let journey_query = chain[3].clone();
    for (i, q) in chain.iter().enumerate() {
        if i != 3 {
            gc.query(q, QueryKind::Subgraph);
        }
    }
    let mut filler = 0u32;
    while gc.len() < 50 && filler < 300 {
        filler += 1;
        if let Some(q) = extract_query(dataset.graph(1 + (filler % 90)), 6, &mut rng) {
            gc.query(&q, QueryKind::Subgraph);
        }
    }

    let journey = run_query_journey(&mut gc, &journey_query, QueryKind::Subgraph);
    println!("{}", journey.rendering);

    let r = &journey.report;
    // --- invariants of the Fig. 3 pipeline -----------------------------------
    assert!(!r.exact_hit);
    assert!(r.verified_set.is_subset(&r.cm_set), "C ⊆ C_M");
    assert!(r.definite_set.is_disjoint(&r.verified_set), "S ∩ C = ∅");
    let mut a = r.survivors_set.clone();
    a.union_with(&r.definite_set);
    assert_eq!(a, r.answer, "A = R ∪ S");
    assert!(!r.sub_hits.is_empty(), "journey must include a sub-case hit");
    assert!(!r.super_hits.is_empty(), "journey must include super-case hits");
    assert!(r.verified < r.cm_size, "the cache must prune C_M");

    let numbers = JourneyNumbers {
        sub_hits: r.sub_hits.len(),
        super_hits: r.super_hits.len(),
        cm: r.cm_size,
        s: r.definite,
        s_prime: r.cm_size - r.verified - r.definite,
        c: r.verified,
        r: r.survivors,
        a: r.answer.count(),
        test_speedup: r.test_speedup(),
    };
    println!(
        "paper's instance: 1 sub + 3 super hits, C_M 75 -> C 43, speedup 1.74 (ratio |C_M|/|C|)"
    );
    println!(
        "this instance   : {} sub + {} super hits, C_M {} -> C {}, speedup {:.2} (probe-charged)",
        numbers.sub_hits, numbers.super_hits, numbers.cm, numbers.c, numbers.test_speedup
    );
    println!("all Fig. 3 pipeline invariants verified: A = R ∪ S, C ⊆ C_M, S ∩ C = ∅");
    match write_artifact("exp3_query_journey", &numbers) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
