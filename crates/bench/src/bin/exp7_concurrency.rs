//! Experiment VII: concurrent-client throughput of the sharded front-end.
//!
//! The ROADMAP's north star is a cache that serves heavy concurrent
//! traffic; this harness measures how `SharedGraphCache` throughput scales
//! with client threads on a fixed zipf workload, against the sequential
//! `GraphCache` as the 1-thread baseline:
//!
//! 1. sequential `GraphCache` over the workload (baseline queries/s);
//! 2. `SharedGraphCache` with 1, 2, 4 and 8 client threads (workload
//!    striped round-robin), answers spot-checked against the sequential
//!    replay.
//!
//! Writes `bench_results/exp7_concurrency.json` and — as the perf
//! trajectory artifact for later PRs — `BENCH_concurrency.json` at the
//! working directory root. The artifact records
//! `available_parallelism`: scaling is bounded by physical cores, so a
//! 1-core container shows flat scaling by construction; the number that
//! must not regress *on equal hardware* is `throughput_qps` per thread
//! count.

use gc_bench::{print_table, write_artifact};
use gc_core::{CacheConfig, GraphCache, PolicyKind, SharedGraphCache};
use gc_method::{Dataset, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct ThroughputPoint {
    mode: String,
    clients: usize,
    queries: usize,
    elapsed_s: f64,
    throughput_qps: f64,
    speedup_vs_sequential: f64,
    hit_ratio: f64,
}

#[derive(Serialize)]
struct Exp7Artifact {
    available_parallelism: usize,
    dataset_graphs: usize,
    n_queries: usize,
    zipf_skew: f64,
    policy: String,
    shards: usize,
    points: Vec<ThroughputPoint>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_graphs = if quick { 60 } else { 150 };
    let n_queries = if quick { 400 } else { 1500 };
    let skew = 1.1;
    let dataset = Arc::new(Dataset::new(molecule_dataset(n_graphs, 4242)));
    let spec = WorkloadSpec {
        n_queries,
        pool_size: 120,
        kind: WorkloadKind::Zipf { skew },
        min_edges: 4,
        max_edges: 10,
        seed: 23,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let config = CacheConfig { capacity: 64, window_size: 8, ..CacheConfig::default() };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- sequential baseline + reference answers ----------------------------
    let mut seq = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        config.clone(),
    )
    .expect("valid config");
    let t0 = Instant::now();
    let expected: Vec<gc_graph::BitSet> =
        workload.queries.iter().map(|wq| seq.query(&wq.graph, wq.kind).answer).collect();
    let seq_elapsed = t0.elapsed().as_secs_f64();
    let seq_qps = n_queries as f64 / seq_elapsed.max(1e-9);

    let mut points = vec![ThroughputPoint {
        mode: "sequential".into(),
        clients: 1,
        queries: n_queries,
        elapsed_s: seq_elapsed,
        throughput_qps: seq_qps,
        speedup_vs_sequential: 1.0,
        hit_ratio: seq.stats().hit_ratio(),
    }];
    let mut rows = vec![vec![
        "sequential".to_string(),
        "1".to_string(),
        format!("{seq_elapsed:.3} s"),
        format!("{seq_qps:.0} q/s"),
        "1.00x".to_string(),
    ]];

    // --- shared front-end at increasing client counts -----------------------
    for clients in [1usize, 2, 4, 8] {
        let gc = SharedGraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd,
            config.clone(),
        )
        .expect("valid config");
        let t0 = Instant::now();
        let mismatches: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|t| {
                    let gc = &gc;
                    let workload = &workload;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut bad = 0usize;
                        for (i, wq) in workload.queries.iter().enumerate() {
                            if i % clients != t {
                                continue;
                            }
                            let got = gc.query(&wq.graph, wq.kind);
                            if got.answer != expected[i] {
                                bad += 1;
                            }
                        }
                        bad
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
        });
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(mismatches, 0, "shared answers diverged from sequential replay");
        let qps = n_queries as f64 / elapsed.max(1e-9);
        points.push(ThroughputPoint {
            mode: "shared".into(),
            clients,
            queries: n_queries,
            elapsed_s: elapsed,
            throughput_qps: qps,
            speedup_vs_sequential: qps / seq_qps,
            hit_ratio: gc.stats().hit_ratio(),
        });
        rows.push(vec![
            "shared".to_string(),
            clients.to_string(),
            format!("{elapsed:.3} s"),
            format!("{qps:.0} q/s"),
            format!("{:.2}x", qps / seq_qps),
        ]);
    }

    println!(
        "=== Experiment VII: concurrent throughput (SI base, HD policy, zipf {skew}, \
         {n_queries} queries, {cores} core(s)) ===\n"
    );
    print_table(&["mode", "clients", "wall time", "throughput", "vs sequential"], &rows);
    println!("\nall shared-mode answers verified bit-identical to the sequential replay");
    if cores < 8 {
        println!(
            "note: only {cores} core(s) available — thread scaling is bounded by hardware, \
             not by the cache (see artifact's available_parallelism)"
        );
    }

    let artifact = Exp7Artifact {
        available_parallelism: cores,
        dataset_graphs: n_graphs,
        n_queries,
        zipf_skew: skew,
        policy: "HD".into(),
        shards: config.shards,
        points,
    };
    match write_artifact("exp7_concurrency", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    // Perf trajectory baseline for later PRs, at the repo/working dir root.
    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => match std::fs::write("BENCH_concurrency.json", json) {
            Ok(()) => println!("baseline: BENCH_concurrency.json"),
            Err(e) => eprintln!("baseline write failed: {e}"),
        },
        Err(e) => eprintln!("baseline serialization failed: {e}"),
    }
}
