//! Experiment V: speedup scaling sweeps (paper §1 "speedups up to 40×",
//! §2 Demonstrator metrics).
//!
//! The kernel papers measure how GC's speedup responds to cache size,
//! workload skew, and resource knobs. This harness sweeps:
//!
//! 1. cache capacity ∈ {25, 50, 100, 200, 400} at fixed skew;
//! 2. workload skew ∈ {0.0, 0.6, 1.2, 1.8} at fixed capacity —
//!    skew is where the up-to-40× regime lives: the more repetition and
//!    containment structure, the larger the speedup;
//! 3. verification threads ∈ {1, 2, 4} (resource-management ablation);
//! 4. hit-check budget ∈ {4, 16, 64, 256} (DESIGN.md §6 ablation).

use gc_bench::{print_table, run_base, run_cached, write_artifact};
use gc_core::{CacheConfig, PolicyKind};
use gc_method::{Dataset, FtvMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct SweepPoint {
    sweep: String,
    x: f64,
    test_speedup: f64,
    time_speedup: f64,
    hit_ratio: f64,
}

fn spec_with(skew: f64, n_queries: usize) -> WorkloadSpec {
    WorkloadSpec {
        n_queries,
        pool_size: 300,
        kind: if skew == 0.0 { WorkloadKind::Uniform } else { WorkloadKind::Zipf { skew } },
        min_edges: 4,
        max_edges: 12,
        seed: 11,
        ..WorkloadSpec::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_queries = if quick { 500 } else { 2500 };
    let dataset = Arc::new(Dataset::new(molecule_dataset(if quick { 150 } else { 400 }, 3007)));
    let mut points: Vec<SweepPoint> = Vec::new();

    // --- sweep 1: cache capacity --------------------------------------------
    let workload = Workload::generate(dataset.graphs(), &spec_with(1.2, n_queries));
    let base = run_base(&dataset, &FtvMethod::build(&dataset, 2), &workload);
    let mut rows = Vec::new();
    for capacity in [25usize, 50, 100, 200, 400] {
        let cfg = CacheConfig { capacity, window_size: 10, ..CacheConfig::default() };
        let out = run_cached(
            &dataset,
            Box::new(FtvMethod::build(&dataset, 2)),
            PolicyKind::Hd,
            &cfg,
            &workload,
            &base,
        );
        rows.push(vec![
            capacity.to_string(),
            format!("{:.2}x", out.test_speedup),
            format!("{:.2}x", out.time_speedup),
            format!("{:.0}%", 100.0 * out.hit_ratio),
        ]);
        points.push(SweepPoint {
            sweep: "capacity".into(),
            x: capacity as f64,
            test_speedup: out.test_speedup,
            time_speedup: out.time_speedup,
            hit_ratio: out.hit_ratio,
        });
    }
    println!("=== Experiment V: scalability sweeps (HD policy, FTV(2) base) ===\n");
    println!("sweep 1: cache capacity (zipf 1.2, {n_queries} queries)");
    print_table(&["capacity", "test-speedup", "time-speedup", "hit%"], &rows);

    // --- sweep 2: workload skew ----------------------------------------------
    let mut rows = Vec::new();
    for skew in [0.0f64, 0.6, 1.2, 1.8] {
        let workload = Workload::generate(dataset.graphs(), &spec_with(skew, n_queries));
        let base = run_base(&dataset, &FtvMethod::build(&dataset, 2), &workload);
        let cfg = CacheConfig { capacity: 100, window_size: 10, ..CacheConfig::default() };
        let out = run_cached(
            &dataset,
            Box::new(FtvMethod::build(&dataset, 2)),
            PolicyKind::Hd,
            &cfg,
            &workload,
            &base,
        );
        rows.push(vec![
            format!("{skew:.1}"),
            format!("{:.2}x", out.test_speedup),
            format!("{:.2}x", out.time_speedup),
            format!("{:.0}%", 100.0 * out.hit_ratio),
        ]);
        points.push(SweepPoint {
            sweep: "skew".into(),
            x: skew,
            test_speedup: out.test_speedup,
            time_speedup: out.time_speedup,
            hit_ratio: out.hit_ratio,
        });
    }
    println!("\nsweep 2: workload skew (capacity 100) — the up-to-40x regime grows with skew");
    print_table(&["zipf skew", "test-speedup", "time-speedup", "hit%"], &rows);

    // --- sweep 3: verification threads ---------------------------------------
    let workload = Workload::generate(dataset.graphs(), &spec_with(1.2, n_queries.min(1000)));
    let base = run_base(&dataset, &FtvMethod::build(&dataset, 2), &workload);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = CacheConfig { capacity: 100, window_size: 10, threads, ..CacheConfig::default() };
        let out = run_cached(
            &dataset,
            Box::new(FtvMethod::build(&dataset, 2)),
            PolicyKind::Hd,
            &cfg,
            &workload,
            &base,
        );
        rows.push(vec![
            threads.to_string(),
            format!("{:.3} ms", out.avg_time_s * 1e3),
            format!("{:.2}x", out.time_speedup),
        ]);
        points.push(SweepPoint {
            sweep: "threads".into(),
            x: threads as f64,
            test_speedup: out.test_speedup,
            time_speedup: out.time_speedup,
            hit_ratio: out.hit_ratio,
        });
    }
    println!("\nsweep 3: verification threads (resource management)");
    print_table(&["threads", "avg time/query", "time-speedup"], &rows);

    // --- sweep 4: hit-check budget -------------------------------------------
    let mut rows = Vec::new();
    for checks in [4usize, 16, 64, 256] {
        let cfg = CacheConfig {
            capacity: 100,
            window_size: 10,
            max_sub_checks: checks,
            max_super_checks: checks,
            ..CacheConfig::default()
        };
        let out = run_cached(
            &dataset,
            Box::new(FtvMethod::build(&dataset, 2)),
            PolicyKind::Hd,
            &cfg,
            &workload,
            &base,
        );
        rows.push(vec![
            checks.to_string(),
            format!("{:.2}x", out.test_speedup),
            format!("{:.0}%", 100.0 * out.hit_ratio),
        ]);
        points.push(SweepPoint {
            sweep: "hit_budget".into(),
            x: checks as f64,
            test_speedup: out.test_speedup,
            time_speedup: out.time_speedup,
            hit_ratio: out.hit_ratio,
        });
    }
    println!("\nsweep 4: hit-check budget (max sub/super candidates verified per query)");
    print_table(&["budget", "test-speedup", "hit%"], &rows);

    match write_artifact("exp5_scalability", &points) {
        Ok(p) => println!("\nartifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
