//! Experiment I (paper §3.1.I): Competition Among Various Policies.
//!
//! Claim to reproduce: *different cache replacement policies take the lead
//! depending on workload and dataset characteristics; HD performs better or
//! on par with the best alternative* ("When in doubt, use the HD
//! replacement policy").
//!
//! Grid: {molecule-like, Erdős–Rényi, scale-free} datasets ×
//! {uniform, Zipf, drift} workloads × {LRU, POP, PIN, PINC, HD}.
//! Metric: speedup in avg sub-iso tests and avg query time vs Method M
//! (FTV) alone.

use gc_bench::{print_table, run_base, run_cached, write_artifact};
use gc_core::{CacheConfig, PolicyKind};
use gc_method::{Dataset, FtvMethod};
use gc_workload::random::{ba_dataset, er_dataset};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Cell {
    dataset: String,
    workload: String,
    policy: String,
    test_speedup: f64,
    time_speedup: f64,
    hit_ratio: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_queries = if quick { 400 } else { 2000 };

    let datasets: Vec<(&str, Arc<Dataset>)> = vec![
        ("molecules", Arc::new(Dataset::new(molecule_dataset(300, 2018)))),
        ("erdos-renyi", Arc::new(Dataset::new(er_dataset(150, 25, 0.12, 4, 2018)))),
        ("scale-free", Arc::new(Dataset::new(ba_dataset(150, 30, 2, 4, 2018)))),
    ];
    let workloads: Vec<(&str, WorkloadKind)> = vec![
        ("uniform", WorkloadKind::Uniform),
        ("zipf(1.2)", WorkloadKind::Zipf { skew: 1.2 }),
        ("drift", WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.3 }),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut hd_wins_or_ties = 0usize;
    let mut combos = 0usize;

    for (ds_name, dataset) in &datasets {
        for (wl_name, wl_kind) in &workloads {
            let spec = WorkloadSpec {
                n_queries,
                pool_size: 150,
                kind: wl_kind.clone(),
                min_edges: 4,
                max_edges: 12,
                seed: 7,
                ..WorkloadSpec::default()
            };
            let workload = Workload::generate(dataset.graphs(), &spec);
            let base = run_base(dataset, &FtvMethod::build(dataset, 2), &workload);
            let config = CacheConfig { capacity: 25, window_size: 10, ..CacheConfig::default() };

            let mut best_speedup = 0.0f64;
            let mut hd_speedup = 0.0f64;
            for policy in PolicyKind::all() {
                let out = run_cached(
                    dataset,
                    Box::new(FtvMethod::build(dataset, 2)),
                    policy,
                    &config,
                    &workload,
                    &base,
                );
                best_speedup = best_speedup.max(out.test_speedup);
                if policy == PolicyKind::Hd {
                    hd_speedup = out.test_speedup;
                }
                rows.push(vec![
                    ds_name.to_string(),
                    wl_name.to_string(),
                    out.policy.clone(),
                    format!("{:.2}x", out.test_speedup),
                    format!("{:.2}x", out.time_speedup),
                    format!("{:.0}%", 100.0 * out.hit_ratio),
                ]);
                cells.push(Cell {
                    dataset: ds_name.to_string(),
                    workload: wl_name.to_string(),
                    policy: out.policy,
                    test_speedup: out.test_speedup,
                    time_speedup: out.time_speedup,
                    hit_ratio: out.hit_ratio,
                });
            }
            combos += 1;
            if hd_speedup >= 0.95 * best_speedup {
                hd_wins_or_ties += 1;
            }
        }
    }

    println!("=== Experiment I: Competition Among Various Policies ===");
    println!("(speedup = avg Method M / avg GC-over-M; {n_queries} queries per combo)\n");
    print_table(&["dataset", "workload", "policy", "test-speedup", "time-speedup", "hit%"], &rows);
    println!(
        "\ntakeaway check: HD best-or-on-par (within 5% of the best) in {hd_wins_or_ties}/{combos} combos"
    );
    match write_artifact("exp1_policies", &cells) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
