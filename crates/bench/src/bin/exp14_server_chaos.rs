//! Experiment XIV: the served cache under chaos.
//!
//! `gc-server` promises the same exact-answer contract as the library —
//! *over a socket, under overload, hostile clients, injected store
//! faults, and restarts*. This harness drives a live server through five
//! adversarial segments and gates every promise; any divergence from
//! Method M alone, any missed shed, or a failed drain/restart **exits
//! nonzero**.
//!
//! * **A — baseline exactness over HTTP**: every answer served over the
//!   wire is cross-checked against a fault-free [`execute_base`] run;
//!   the retrying load client (`gc-load`'s engine) must complete a
//!   striped workload with zero unrecovered failures.
//! * **B — overload**: a deliberately tiny server (one worker, a
//!   one-slot queue) is saturated; further connections must shed with
//!   `503` + `Retry-After` in microseconds, and the server must be
//!   fully responsive again once the pressure lifts.
//! * **C — hostile clients**: protocol garbage, mid-request connection
//!   kills, connect/close churn, slow-loris stalls, and zero-deadline
//!   requests. The server answers `400`/`408`/`504` as designed and
//!   keeps serving exact answers throughout.
//! * **D — injected store faults**: a [`FaultPlan`] wired through
//!   [`Server::start_with_faults`] fails every journal append and
//!   snapshot write; persistence degrades *visibly* (`/stats`,
//!   `/readyz` body) while answers stay exact and memory-only.
//! * **E — drain + warm restart**: graceful drain finishes in-flight
//!   work within its bound, clears the fault plan, and cuts a final
//!   snapshot; a second server restored from the same directory starts
//!   warm and serves the same exact answers.
//!
//! Writes `bench_results/exp14_server_chaos.json` and — as the repo's
//! serving-robustness trajectory artifact — `BENCH_server.json` on full
//! runs. `--smoke` shrinks everything for CI.

use gc_bench::{print_table, write_artifact};
use gc_core::persist::{CacheStore, Failpoint, FaultPlan, FaultSite};
use gc_core::{CacheConfig, PolicyKind, SharedGraphCache};
use gc_method::{execute_base, Dataset, Engine, QueryKind, SiMethod};
use gc_server::{HttpClient, LoadSpec, QueryResponse, Server, ServerConfig, StatsResponse};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Exp14Artifact {
    smoke: bool,
    dataset_size: usize,
    /// Answers served over HTTP and cross-checked against Method M.
    answers_cross_checked: usize,
    /// Segment A: the retrying load client's merged report.
    load_sent: u64,
    load_ok: u64,
    load_shed: u64,
    load_retries: u64,
    load_failed: u64,
    load_p50_us: u64,
    load_p99_us: u64,
    load_throughput_rps: f64,
    /// Segment B: overload sheds observed (503 + Retry-After).
    overload_sheds: u64,
    /// Segment C: hostile-client outcomes.
    garbage_connections: usize,
    parse_errors_counted: u64,
    mid_request_kills: usize,
    churn_connections: usize,
    slow_loris_cutoffs: usize,
    deadline_504s: usize,
    /// Segment D: injected store faults.
    store_faults_fired: usize,
    degraded_visible_in_stats: bool,
    degraded_visible_in_readyz: bool,
    /// Segment E: drain + warm restart.
    drain_forced: bool,
    drain_ms: f64,
    final_snapshot_generation: u64,
    warm_restart: bool,
    post_restart_checked: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp14 FAILED: {msg}");
    std::process::exit(1);
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_exp14_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(n: usize) -> Arc<Dataset> {
    Arc::new(Dataset::new(molecule_dataset(n, 1414)))
}

fn workload(ds: &Arc<Dataset>, n: usize, seed: u64) -> Workload {
    let spec = WorkloadSpec {
        n_queries: n,
        pool_size: 24,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed,
        ..WorkloadSpec::default()
    };
    Workload::generate(ds.graphs(), &spec)
}

fn shared_cache(ds: &Arc<Dataset>, store: Option<Arc<CacheStore>>) -> Arc<SharedGraphCache> {
    let cfg = CacheConfig {
        capacity: 24,
        window_size: 3,
        min_admit_tests: 0,
        persist_retries: 2,
        ..CacheConfig::default()
    };
    let cache = match store {
        Some(store) => {
            let (gc, _) = SharedGraphCache::restore_from(
                ds.clone(),
                Arc::new(SiMethod),
                || PolicyKind::Hd.make(),
                cfg,
                store,
            )
            .unwrap_or_else(|e| fail(&format!("cache restore: {e}")));
            gc
        }
        None => SharedGraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg)
            .unwrap_or_else(|e| fail(&format!("cache build: {e}"))),
    };
    Arc::new(cache)
}

/// POST every query in `w` over `client`, cross-checking each answer
/// against a fault-free base execution. Returns answers checked.
fn run_checked_http(client: &mut HttpClient, ds: &Arc<Dataset>, w: &Workload, what: &str) -> usize {
    let mut checked = 0usize;
    for wq in &w.queries {
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&wq.graph));
        let path = match wq.kind {
            QueryKind::Subgraph => "/query?kind=sub",
            QueryKind::Supergraph => "/query?kind=super",
        };
        let resp = client
            .post(path, body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("{what}: request failed: {e}")));
        if resp.status != 200 {
            fail(&format!("{what}: HTTP {} — {}", resp.status, resp.body_text()));
        }
        let parsed: QueryResponse = serde_json::from_str(&resp.body_text())
            .unwrap_or_else(|e| fail(&format!("{what}: bad response body: {e}")));
        let want = execute_base(ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        if parsed.answer != want.answer.to_vec() {
            fail(&format!("{what}: HTTP answer diverged from Method M alone"));
        }
        checked += 1;
    }
    checked
}

fn server_stats(addr: std::net::SocketAddr) -> StatsResponse {
    let mut client =
        HttpClient::connect(addr).unwrap_or_else(|e| fail(&format!("/stats connect: {e}")));
    let resp = client.get("/stats").unwrap_or_else(|e| fail(&format!("/stats: {e}")));
    serde_json::from_str(&resp.body_text()).unwrap_or_else(|e| fail(&format!("/stats body: {e}")))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds_size = if smoke { 24 } else { 60 };
    let seg_queries = if smoke { 30 } else { 150 };
    let churn = if smoke { 20 } else { 120 };
    let garbage = if smoke { 8 } else { 40 };
    let kills = if smoke { 6 } else { 30 };

    let ds = dataset(ds_size);
    let mut answers_cross_checked = 0usize;

    // ---- segment A: baseline exactness over HTTP --------------------------
    // A store-backed server; first a sequential cross-checked pass, then
    // the retrying load client (the `gc-load` engine) striped over
    // several connections — it must absorb any transient shed and finish
    // with zero unrecovered failures.
    let dir = fresh_dir("store");
    let store = Arc::new(CacheStore::open(&dir).unwrap_or_else(|e| fail(&format!("open: {e}"))));
    let server = Server::start(
        shared_cache(&ds, Some(Arc::clone(&store))),
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            // Short socket timeouts so the hostile-client segment (stalls,
            // torn heads) resolves in hundreds of milliseconds, not seconds.
            read_timeout: Duration::from_millis(700),
            write_timeout: Duration::from_millis(700),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("segment A: start: {e}")));
    let addr = server.addr();
    let mut client =
        HttpClient::connect(addr).unwrap_or_else(|e| fail(&format!("segment A: connect: {e}")));
    answers_cross_checked +=
        run_checked_http(&mut client, &ds, &workload(&ds, seg_queries, 2), "segment A");

    let load = gc_server::run_load(
        addr,
        &workload(&ds, seg_queries, 3),
        &LoadSpec { connections: 6, retries: 4, seed: 14, ..LoadSpec::default() },
    );
    if load.failed > 0 {
        fail(&format!("segment A: load client left {} unrecovered failures", load.failed));
    }
    if load.ok != load.sent {
        fail(&format!("segment A: load client: {} ok of {} sent", load.ok, load.sent));
    }

    // ---- segment C: hostile clients (against the segment-A server) --------
    // C1: protocol garbage — parse errors answered with 4xx, never a hang.
    let mut garbage_connections = 0usize;
    for i in 0..garbage {
        let mut s = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("C1 connect: {e}")));
        let junk = match i % 4 {
            0 => b"\x00\xffnot http at all\r\n\r\n".to_vec(),
            1 => b"GET \x7f HTTP/1.1\r\n\r\n".to_vec(),
            2 => b"POST /query HTTP/9.9\r\n\r\n".to_vec(),
            _ => vec![0xAA; 512],
        };
        let _ = s.write_all(&junk);
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        if !text.starts_with("HTTP/1.1 4") && !text.starts_with("HTTP/1.1 5") {
            fail(&format!("C1: garbage got no error response: {text:?}"));
        }
        garbage_connections += 1;
    }
    let parse_errors_counted =
        server.metrics().parse_errors.load(std::sync::atomic::Ordering::Relaxed);
    if parse_errors_counted == 0 {
        fail("C1: no parse error counted — segment is vacuous");
    }

    // C2: mid-request kills — declare a body, send half, slam the
    // connection shut. The worker must just move on.
    let mut mid_request_kills = 0usize;
    for _ in 0..kills {
        let mut s = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("C2 connect: {e}")));
        let _ = s.write_all(
            b"POST /query?kind=sub HTTP/1.1\r\ncontent-length: 500\r\n\r\nt # 0\nv 0 0\n",
        );
        drop(s); // kill mid-body
        mid_request_kills += 1;
    }

    // C3: connect/close churn — accept-loop pressure, no requests at all.
    let mut churn_connections = 0usize;
    for _ in 0..churn {
        match TcpStream::connect(addr) {
            Ok(s) => drop(s),
            Err(e) => fail(&format!("C3: churn connect failed: {e}")),
        }
        churn_connections += 1;
    }

    // C4: slow-loris — a torn head then silence must be cut off with 408.
    let mut slow_loris_cutoffs = 0usize;
    for _ in 0..(if smoke { 2 } else { 6 }) {
        let mut s = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("C4 connect: {e}")));
        s.write_all(b"POST /query HTTP/1.1\r\ncontent-le").unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        if !text.starts_with("HTTP/1.1 408") {
            fail(&format!("C4: slow loris not cut off with 408: {text:?}"));
        }
        slow_loris_cutoffs += 1;
    }

    // C5: zero deadlines — expired before execution, answered 504. A
    // fresh connection: the keep-alive from segment A idled out under
    // the short server read timeout (by design).
    let mut deadline_504s = 0usize;
    let mut client =
        HttpClient::connect(addr).unwrap_or_else(|e| fail(&format!("C5 connect: {e}")));
    let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&ds.graphs()[0]));
    for _ in 0..(if smoke { 2 } else { 8 }) {
        let resp = client
            .request("POST", "/query", &[("x-deadline-ms", "0")], body.as_bytes())
            .unwrap_or_else(|e| fail(&format!("C5: {e}")));
        if resp.status != 504 {
            fail(&format!("C5: zero deadline answered {} not 504", resp.status));
        }
        deadline_504s += 1;
    }

    // After all hostility: the server still serves exact answers.
    answers_cross_checked +=
        run_checked_http(&mut client, &ds, &workload(&ds, 10, 4), "segment C aftermath");
    let drained = server.drain();
    if drained.forced {
        fail("segment C: drain was forced after hostile-client segment");
    }

    // ---- segment B: overload shed + recovery -------------------------------
    // A deliberately tiny server: 1 worker (stalled by a slow client), a
    // 1-slot queue (occupied), so every further connection must shed.
    let tiny = Server::start(
        shared_cache(&ds, None),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("segment B: start: {e}")));
    let tiny_addr = tiny.addr();
    let mut busy = TcpStream::connect(tiny_addr).unwrap_or_else(|e| fail(&format!("B: {e}")));
    busy.write_all(b"POST /query HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _queued = TcpStream::connect(tiny_addr).unwrap_or_else(|e| fail(&format!("B: {e}")));
    std::thread::sleep(Duration::from_millis(50));

    let mut overload_sheds = 0u64;
    let probes = if smoke { 8 } else { 24 };
    for _ in 0..probes {
        let mut probe =
            TcpStream::connect(tiny_addr).unwrap_or_else(|e| fail(&format!("B probe: {e}")));
        probe.set_read_timeout(Some(Duration::from_millis(800))).unwrap();
        let mut out = Vec::new();
        let _ = probe.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        if text.starts_with("HTTP/1.1 503") {
            if !text.to_ascii_lowercase().contains("retry-after:") {
                fail("segment B: shed 503 without Retry-After");
            }
            overload_sheds += 1;
        }
    }
    if overload_sheds == 0 {
        fail("segment B: saturation shed no connection — overload protection is inert");
    }
    if tiny.metrics().total_shed() < overload_sheds {
        fail("segment B: shed gauge undercounts observed 503s");
    }
    // Pressure lifts (stalled clients cut off by read timeouts): the tiny
    // server must answer exactly again — overload never wedges it.
    drop(busy);
    std::thread::sleep(Duration::from_millis(600));
    let mut after =
        HttpClient::connect(tiny_addr).unwrap_or_else(|e| fail(&format!("B recovery: {e}")));
    answers_cross_checked +=
        run_checked_http(&mut after, &ds, &workload(&ds, 6, 5), "segment B recovery");
    let report = tiny.drain();
    if report.forced {
        fail("segment B: drain forced after overload");
    }

    // ---- segment D: injected store faults ----------------------------------
    // Every journal append and snapshot write fails. The server keeps
    // serving exact answers memory-only; the degradation must be visible
    // to operators through /stats and /readyz.
    let plan = Arc::new(FaultPlan::seeded(14));
    plan.arm(FaultSite::JournalAppend, Failpoint::ErrAfter { n: 0 });
    plan.arm(FaultSite::SnapshotWrite, Failpoint::ErrAfter { n: 0 });
    let faulted = Server::start_with_faults(
        shared_cache(&ds, Some(Arc::clone(&store))),
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            // Short reads so drain is not held up by idle keep-alives.
            read_timeout: Duration::from_millis(700),
            write_timeout: Duration::from_millis(700),
            ..ServerConfig::default()
        },
        Some(Arc::clone(&plan)),
    )
    .unwrap_or_else(|e| fail(&format!("segment D: start: {e}")));
    let faulted_addr = faulted.addr();
    let mut dclient =
        HttpClient::connect(faulted_addr).unwrap_or_else(|e| fail(&format!("D connect: {e}")));
    answers_cross_checked +=
        run_checked_http(&mut dclient, &ds, &workload(&ds, seg_queries, 6), "segment D");
    let store_faults_fired = plan.fired();
    if store_faults_fired == 0 {
        fail("segment D: no store fault fired — segment is vacuous");
    }
    let stats = server_stats(faulted_addr);
    let degraded_visible_in_stats = stats.persist_health == "degraded";
    if !degraded_visible_in_stats {
        fail(&format!(
            "segment D: /stats reports persist_health {:?}, expected \"degraded\"",
            stats.persist_health
        ));
    }
    if stats.persist_errors == 0 {
        fail("segment D: /stats persist_errors is zero under a total outage");
    }
    let ready = dclient.get("/readyz").unwrap_or_else(|e| fail(&format!("D readyz: {e}")));
    // Degraded stays *ready* (it serves exact answers) but names the state.
    let degraded_visible_in_readyz = ready.status == 200 && ready.body_text().contains("degraded");
    if !degraded_visible_in_readyz {
        fail(&format!(
            "segment D: /readyz hides the degradation ({} — {:?})",
            ready.status,
            ready.body_text()
        ));
    }

    // ---- segment E: drain + warm restart -----------------------------------
    // Drain clears the fault plan and cuts a final snapshot; a server
    // restored from the same directory starts warm and answers exactly.
    let t_drain = Instant::now();
    let drain = faulted.drain();
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    if drain.forced {
        fail("segment E: drain bound expired with workers still busy");
    }
    let Some(final_snapshot_generation) = drain.snapshot_generation else {
        fail("segment E: drain cut no final snapshot despite an attached store");
    };
    drop(store);

    let store2 = Arc::new(CacheStore::open(&dir).unwrap_or_else(|e| fail(&format!("reopen: {e}"))));
    let cfg =
        CacheConfig { capacity: 24, window_size: 3, min_admit_tests: 0, ..CacheConfig::default() };
    let (restored, recovery) = SharedGraphCache::restore_from(
        ds.clone(),
        Arc::new(SiMethod),
        || PolicyKind::Hd.make(),
        cfg,
        store2,
    )
    .unwrap_or_else(|e| fail(&format!("segment E: restore: {e}")));
    let warm_restart = recovery.warm;
    if !warm_restart {
        fail(&format!("segment E: restart was cold: {:?}", recovery.cold_reason));
    }
    let reborn = Server::start(Arc::new(restored), ServerConfig::default())
        .unwrap_or_else(|e| fail(&format!("segment E: restart: {e}")));
    let mut eclient =
        HttpClient::connect(reborn.addr()).unwrap_or_else(|e| fail(&format!("E connect: {e}")));
    let post_restart_checked =
        run_checked_http(&mut eclient, &ds, &workload(&ds, seg_queries.min(40), 7), "segment E");
    answers_cross_checked += post_restart_checked;
    let final_drain = reborn.drain();
    if final_drain.forced {
        fail("segment E: final drain forced");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // ---- report -----------------------------------------------------------
    println!(
        "=== Experiment XIV: server chaos ({ds_size} graphs, {answers_cross_checked} HTTP \
         answers cross-checked) ===\n"
    );
    let rows = vec![
        vec![
            "exactness over HTTP".to_owned(),
            format!("{answers_cross_checked} answers"),
            "all identical to Method M alone".to_owned(),
        ],
        vec![
            "retrying load client".to_owned(),
            format!("{}/{} ok, {} retries", load.ok, load.sent, load.retries),
            format!("p50 {} us, p99 {} us", load.p50_us, load.p99_us),
        ],
        vec![
            "overload shedding".to_owned(),
            format!("{overload_sheds} sheds of {probes} probes"),
            "503 + Retry-After, then full recovery".to_owned(),
        ],
        vec![
            "hostile clients".to_owned(),
            format!(
                "{garbage_connections} garbage, {mid_request_kills} kills, {churn_connections} churn"
            ),
            format!("{slow_loris_cutoffs}x 408, {deadline_504s}x 504, exact after"),
        ],
        vec![
            "store-fault degradation".to_owned(),
            format!("{store_faults_fired} faults fired"),
            "visible in /stats + /readyz, answers exact".to_owned(),
        ],
        vec![
            "drain + warm restart".to_owned(),
            format!("{drain_ms:.0} ms, snapshot gen {final_snapshot_generation}"),
            format!("warm={warm_restart}, {post_restart_checked} answers re-checked"),
        ],
    ];
    print_table(&["contract", "observed", "note"], &rows);

    let artifact = Exp14Artifact {
        smoke,
        dataset_size: ds_size,
        answers_cross_checked,
        load_sent: load.sent,
        load_ok: load.ok,
        load_shed: load.shed,
        load_retries: load.retries,
        load_failed: load.failed,
        load_p50_us: load.p50_us,
        load_p99_us: load.p99_us,
        load_throughput_rps: load.throughput_rps,
        overload_sheds,
        garbage_connections,
        parse_errors_counted,
        mid_request_kills,
        churn_connections,
        slow_loris_cutoffs,
        deadline_504s,
        store_faults_fired,
        degraded_visible_in_stats,
        degraded_visible_in_readyz,
        drain_forced: drain.forced,
        drain_ms,
        final_snapshot_generation,
        warm_restart,
        post_restart_checked,
    };
    match write_artifact("exp14_server_chaos", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_server.json", json) {
                Ok(()) => println!("baseline: BENCH_server.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
