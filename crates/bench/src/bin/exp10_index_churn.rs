//! Experiment X: containment-index maintenance under admission/eviction
//! churn.
//!
//! PR 3 made the probe side of `gc_index::QueryIndex` allocation-free, but
//! directory *maintenance* stayed eager: every admission inserting a new
//! feature hash paid an O(n) `Vec::insert` memmove over the sorted
//! directory, every eviction that drained a posting list the matching
//! `Vec::remove`. This harness drives both tiers through one interleaved
//! admit/evict/probe schedule over a wide-alphabet workload (tens of
//! thousands of distinct feature hashes — the regime the ROADMAP flagged):
//!
//! * **old** — [`gc_index::reference::EagerQueryIndex`]: the eager sorted
//!   directory;
//! * **new** — the production [`QueryIndex`]: tombstoned slots with lazy
//!   compaction plus a batched append tail (admission/eviction memmoves at
//!   most the small tail run), probed through a reusable [`CandScratch`] with
//!   per-step adaptive galloping merges.
//!
//! Every probe's sub- and super-case candidate lists are cross-checked
//! between the tiers; any divergence **exits nonzero**, making this a
//! correctness gate as well as a benchmark. Writes
//! `bench_results/exp10_index_churn.json` and — as the repo's
//! index-maintenance perf-trajectory artifact — `BENCH_index.json` at the
//! working-directory root on full runs.
//!
//! `--smoke` shrinks the schedule for CI regression gating.

use gc_bench::{print_table, write_artifact};
use gc_graph::{Graph, GraphBuilder, Label};
use gc_index::reference::EagerQueryIndex;
use gc_index::{CandScratch, FeatureConfig, FeatureVec, QueryIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::{Duration, Instant};

/// One step of the deterministic churn schedule.
enum Op {
    /// Evict `slot`, then admit the graph at `pool_idx` under `slot`.
    Replace { slot: u32, pool_idx: usize },
    /// Admit the graph at `pool_idx` under the fresh `slot`.
    Admit { slot: u32, pool_idx: usize },
    /// Probe with the query at `pool_idx` (both containment directions).
    Probe { pool_idx: usize },
}

#[derive(Serialize)]
struct Exp10Artifact {
    smoke: bool,
    capacity: usize,
    steps: usize,
    probes: usize,
    feature_len: usize,
    repeats: usize,
    /// Peak distinct live feature hashes in the new tier's directory.
    distinct_hashes_peak: usize,
    old_maint_s: f64,
    new_maint_s: f64,
    old_probe_s: f64,
    new_probe_s: f64,
    old_maint_ops_per_s: f64,
    new_maint_ops_per_s: f64,
    /// `old_maint_s / new_maint_s` — the admit+evict number that must stay
    /// ≥ 1 (the acceptance bar of the PR was ≥ 2 at 10k hashes).
    maint_speedup: f64,
    probe_speedup: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp10 cross-check FAILED: {msg}");
    std::process::exit(1);
}

/// A labelled chain with a wide random alphabet: nearly every path feature
/// hash is unique to its graph, so churn constantly creates and drains
/// directory slots (the adversarial regime for directory maintenance).
fn wide_chain(rng: &mut StdRng, n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(Label(rng.gen_range(0..50_000u32)));
    }
    for v in 1..n as u32 {
        let _ = b.add_edge_dedup(v - 1, v);
    }
    // A little branching so tree-shaped features show up too.
    if n >= 4 {
        let _ = b.add_edge_dedup(1, 3);
    }
    b.build()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let capacity = if smoke { 64 } else { 400 };
    let steps = if smoke { 400 } else { 3000 };
    let probe_every = 16;
    let repeats = if smoke { 1 } else { 3 };
    let feature_len = 3;
    let cfg = FeatureConfig::with_max_len(feature_len);

    // Graph pool + one extraction per pool entry, shared by both tiers:
    // the harness measures *index maintenance*, not extraction.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pool_size = capacity + steps.min(1200);
    let pool: Vec<Graph> = (0..pool_size).map(|_| wide_chain(&mut rng, 8)).collect();
    let features: Vec<FeatureVec> = pool.iter().map(|g| gc_index::feature_vec(g, &cfg)).collect();

    // Deterministic interleaved schedule with a slab simulation.
    let mut schedule: Vec<Op> = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next_pool = 0usize;
    let mut probes = 0usize;
    for step in 0..steps {
        if live.len() < capacity {
            let slot = live.len() as u32;
            schedule.push(Op::Admit { slot, pool_idx: next_pool });
            live.push(slot);
        } else {
            let slot = live[rng.gen_range(0..live.len())];
            schedule.push(Op::Replace { slot, pool_idx: next_pool });
        }
        next_pool = (next_pool + 1) % pool.len();
        if step % probe_every == probe_every - 1 {
            schedule.push(Op::Probe { pool_idx: rng.gen_range(0..pool.len()) });
            probes += 1;
        }
    }

    // --- old tier: eager directory (and the reference probe answers) -----
    let mut old_answers: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut old_maint = Duration::ZERO;
    let mut old_probe = Duration::ZERO;
    for rep in 0..repeats {
        let mut old = EagerQueryIndex::new(cfg);
        if rep == 0 {
            old_answers.clear();
        }
        for op in &schedule {
            match *op {
                Op::Admit { slot, pool_idx } => {
                    let fv = features[pool_idx].clone();
                    let t = Instant::now();
                    old.insert_features(slot, fv);
                    old_maint += t.elapsed();
                }
                Op::Replace { slot, pool_idx } => {
                    let fv = features[pool_idx].clone();
                    let t = Instant::now();
                    old.remove(slot);
                    old.insert_features(slot, fv);
                    old_maint += t.elapsed();
                }
                Op::Probe { pool_idx } => {
                    let qf = &features[pool_idx];
                    let t = Instant::now();
                    let sub = old.sub_case_candidates(qf);
                    let sup = old.super_case_candidates(qf);
                    old_probe += t.elapsed();
                    if rep == 0 {
                        old_answers.push((sub, sup));
                    }
                }
            }
        }
    }

    // --- new tier: tombstoned directory, answer-checked -------------------
    let mut new_maint = Duration::ZERO;
    let mut new_probe = Duration::ZERO;
    let mut distinct_peak = 0usize;
    let mut scratch = CandScratch::new();
    for _rep in 0..repeats {
        let mut new = QueryIndex::new(cfg);
        let mut probe_at = 0usize;
        for op in &schedule {
            match *op {
                Op::Admit { slot, pool_idx } => {
                    let fv = features[pool_idx].clone();
                    let t = Instant::now();
                    new.insert_features(slot, fv);
                    new_maint += t.elapsed();
                }
                Op::Replace { slot, pool_idx } => {
                    let fv = features[pool_idx].clone();
                    let t = Instant::now();
                    new.remove(slot);
                    new.insert_features(slot, fv);
                    new_maint += t.elapsed();
                }
                Op::Probe { pool_idx } => {
                    // Cross-checks run outside the timed windows so both
                    // tiers time exactly their two candidate calls.
                    let qf = &features[pool_idx];
                    let t = Instant::now();
                    new.sub_case_candidates_into(qf.as_features(), &mut scratch);
                    new_probe += t.elapsed();
                    if scratch.candidates() != old_answers[probe_at].0.as_slice() {
                        fail(&format!("sub-case candidates diverged at probe {probe_at}"));
                    }
                    let t = Instant::now();
                    new.super_case_candidates_into(qf.as_features(), &mut scratch);
                    new_probe += t.elapsed();
                    if scratch.candidates() != old_answers[probe_at].1.as_slice() {
                        fail(&format!("super-case candidates diverged at probe {probe_at}"));
                    }
                    probe_at += 1;
                }
            }
            distinct_peak = distinct_peak.max(new.distinct_features());
        }
    }

    // Every step inserts once; replace steps (beyond the fill phase) also
    // remove once.
    let maint_ops = ((2 * steps - capacity.min(steps)) * repeats) as f64;
    let old_maint_s = old_maint.as_secs_f64() / repeats as f64;
    let new_maint_s = new_maint.as_secs_f64() / repeats as f64;
    let old_probe_s = old_probe.as_secs_f64() / repeats as f64;
    let new_probe_s = new_probe.as_secs_f64() / repeats as f64;
    let maint_speedup = old_maint_s / new_maint_s.max(1e-12);
    let probe_speedup = old_probe_s / new_probe_s.max(1e-12);

    println!(
        "=== Experiment X: index maintenance under churn ({capacity} live entries, \
         {steps} admit/evict steps, {probes} probes, {distinct_peak} peak distinct hashes, \
         answers cross-checked) ===\n"
    );
    let per_rep_ops = maint_ops / repeats as f64;
    let rows = vec![
        vec![
            "admit+evict".to_owned(),
            format!("{:.1}k ops/s", per_rep_ops / old_maint_s.max(1e-12) / 1e3),
            format!("{:.1}k ops/s", per_rep_ops / new_maint_s.max(1e-12) / 1e3),
            format!("{maint_speedup:.2}x"),
        ],
        vec![
            "probe".to_owned(),
            format!("{:.1}k/s", probes as f64 / old_probe_s.max(1e-12) / 1e3),
            format!("{:.1}k/s", probes as f64 / new_probe_s.max(1e-12) / 1e3),
            format!("{probe_speedup:.2}x"),
        ],
    ];
    print_table(&["stage", "old (eager)", "new (tombstoned)", "speedup"], &rows);
    println!("\nall new-tier probe answers matched the eager tier");

    let artifact = Exp10Artifact {
        smoke,
        capacity,
        steps,
        probes,
        feature_len,
        repeats,
        distinct_hashes_peak: distinct_peak,
        old_maint_s,
        new_maint_s,
        old_probe_s,
        new_probe_s,
        old_maint_ops_per_s: per_rep_ops / old_maint_s.max(1e-12),
        new_maint_ops_per_s: per_rep_ops / new_maint_s.max(1e-12),
        maint_speedup,
        probe_speedup,
    };
    match write_artifact("exp10_index_churn", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        // Perf trajectory baseline for later PRs (smoke runs are too noisy
        // to overwrite it).
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_index.json", json) {
                Ok(()) => println!("baseline: BENCH_index.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
