//! Experiment VI (extension): ablation of GC's design choices (DESIGN.md §6).
//!
//! The paper leaves several mechanisms unspecified; this harness quantifies
//! the choices made by this reproduction:
//!
//! 1. **HD formula** — bundled rank-sum HD vs an arithmetic-normalised HD,
//!    vs pure PIN/PINC, vs GreedyDual-Size and a Random control;
//! 2. **window size** — replacement batching {1, 5, 10, 25};
//! 3. **admission threshold** — `min_admit_tests` ∈ {0, 1, 4, 16}.

use gc_bench::{print_table, run_base, write_artifact, BaseAggregate};
use gc_core::policy_ext::{GdsPolicy, HdArithPolicy, RandomPolicy};
use gc_core::{CacheConfig, GraphCache, PolicyKind, ReplacementPolicy};
use gc_method::{Dataset, FtvMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct AblationRow {
    axis: String,
    variant: String,
    test_speedup: f64,
    hit_ratio: f64,
}

fn run_with_policy(
    dataset: &Arc<Dataset>,
    policy: Box<dyn ReplacementPolicy>,
    config: &CacheConfig,
    workload: &Workload,
    base: &BaseAggregate,
) -> (f64, f64) {
    let mut gc = GraphCache::new(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, 2)),
        policy,
        config.clone(),
    )
    .expect("valid config");
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    let stats = gc.stats();
    (base.avg_tests / stats.avg_tests_per_query(), stats.hit_ratio())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_queries = if quick { 500 } else { 2500 };
    let dataset = Arc::new(Dataset::new(molecule_dataset(if quick { 150 } else { 300 }, 515)));
    let spec = WorkloadSpec {
        n_queries,
        pool_size: 200,
        kind: WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.3 },
        min_edges: 4,
        max_edges: 12,
        seed: 61,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let base = run_base(&dataset, &FtvMethod::build(&dataset, 2), &workload);
    let tight = CacheConfig { capacity: 25, window_size: 10, ..CacheConfig::default() };
    let mut rows_json: Vec<AblationRow> = Vec::new();

    // --- axis 1: eviction formula --------------------------------------------
    let mut rows = Vec::new();
    let variants: Vec<(&str, Box<dyn ReplacementPolicy>)> = vec![
        ("HD (rank-sum, bundled)", PolicyKind::Hd.make()),
        ("HD-arith", Box::new(HdArithPolicy::new())),
        ("PIN", PolicyKind::Pin.make()),
        ("PINC", PolicyKind::Pinc.make()),
        ("GDS", Box::new(GdsPolicy::new())),
        ("Random", Box::new(RandomPolicy::new(99))),
    ];
    for (name, policy) in variants {
        let (speedup, hit) = run_with_policy(&dataset, policy, &tight, &workload, &base);
        rows.push(vec![name.to_string(), format!("{speedup:.2}x"), format!("{:.0}%", 100.0 * hit)]);
        rows_json.push(AblationRow {
            axis: "formula".into(),
            variant: name.into(),
            test_speedup: speedup,
            hit_ratio: hit,
        });
    }
    println!("=== Experiment VI: design-choice ablations (drift workload, capacity 25) ===\n");
    println!("axis 1: eviction formula");
    print_table(&["variant", "test-speedup", "hit%"], &rows);

    // --- axis 2: window size --------------------------------------------------
    let mut rows = Vec::new();
    for window in [1usize, 5, 10, 25] {
        let cfg = CacheConfig { window_size: window, ..tight.clone() };
        let (speedup, hit) =
            run_with_policy(&dataset, PolicyKind::Hd.make(), &cfg, &workload, &base);
        rows.push(vec![
            window.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * hit),
        ]);
        rows_json.push(AblationRow {
            axis: "window".into(),
            variant: window.to_string(),
            test_speedup: speedup,
            hit_ratio: hit,
        });
    }
    println!("\naxis 2: admission window size (replacement batching)");
    print_table(&["window", "test-speedup", "hit%"], &rows);

    // --- axis 3: admission threshold -------------------------------------------
    let mut rows = Vec::new();
    for min_tests in [0usize, 1, 4, 16] {
        let cfg = CacheConfig { min_admit_tests: min_tests, ..tight.clone() };
        let (speedup, hit) =
            run_with_policy(&dataset, PolicyKind::Hd.make(), &cfg, &workload, &base);
        rows.push(vec![
            min_tests.to_string(),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * hit),
        ]);
        rows_json.push(AblationRow {
            axis: "admission".into(),
            variant: min_tests.to_string(),
            test_speedup: speedup,
            hit_ratio: hit,
        });
    }
    println!("\naxis 3: admission threshold (min sub-iso tests to cache a query)");
    print_table(&["min tests", "test-speedup", "hit%"], &rows);

    match write_artifact("exp6_ablation", &rows_json) {
        Ok(p) => println!("\nartifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
