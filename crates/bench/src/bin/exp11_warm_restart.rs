//! Experiment XI: warm restarts from durable cache state.
//!
//! GraphCache's whole value proposition is *accumulated* state, yet before
//! the `gc-store` subsystem every restart threw it away and re-paid the
//! cold-start subgraph-isomorphism tax. This harness measures what the
//! snapshot + journal persistence buys and gates its correctness contract:
//!
//! 1. **Session A** serves a Zipf workload with persistence attached
//!    (auto-snapshots mid-run, so the final on-disk state is a snapshot
//!    *plus* a journal tail), then "crashes" (dropped without a final
//!    snapshot).
//! 2. **Session B** warm-restarts from the store. The harness verifies the
//!    restored entry set matches A's exactly (by fingerprint multiset, with
//!    journaled admissions replayed) and that every restored entry serves
//!    an **exact hit with zero recomputed admissions**.
//! 3. A probe workload runs on B (warm) and on a fresh cold cache;
//!    **answers are cross-checked identical query-by-query** (and against
//!    Method M alone), and the time/queries to reach the target hit ratio
//!    are compared — the headline cold-vs-warm numbers.
//! 4. **Corruption injection**: bit-flipped and truncated snapshot/journal
//!    files must all fail closed to a *cold but correct* start, while a
//!    *torn journal tail* (the signature of a crash mid-append) must keep
//!    the intact prefix and restore warm. Any violation **exits nonzero**,
//!    making this a recovery gate as well as a benchmark.
//!
//! Writes `bench_results/exp11_warm_restart.json` and — as the repo's
//! persistence perf-trajectory artifact — `BENCH_store.json` on full runs.
//! `--smoke` shrinks everything for CI.

use gc_bench::{print_table, write_artifact};
use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind, QueryReport};
use gc_method::{execute_base, Dataset, Engine, FtvMethod, QueryKind, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Exp11Artifact {
    smoke: bool,
    dataset_size: usize,
    warmup_queries: usize,
    probe_queries: usize,
    capacity: usize,
    /// Entries live in session A at the crash.
    entries_at_crash: usize,
    /// Entries session B restored (must equal `entries_at_crash`).
    entries_restored: usize,
    /// Journal records replayed on restore (admissions + evictions).
    journal_admits_replayed: usize,
    journal_evicts_replayed: usize,
    /// Wall time of the restore (load + replay + fresh snapshot), seconds.
    restore_s: f64,
    snapshot_bytes: u64,
    /// Probe-workload wall time, cold vs warm cache.
    cold_probe_s: f64,
    warm_probe_s: f64,
    /// `cold_probe_s / warm_probe_s`.
    warm_time_speedup: f64,
    /// Average sub-iso tests per probe query (probe tests charged), the
    /// paper's primary metric.
    cold_avg_tests: f64,
    warm_avg_tests: f64,
    /// `cold_avg_tests / warm_avg_tests`.
    warm_test_speedup: f64,
    /// Queries until the cumulative hit ratio reaches the target
    /// (`probe_queries + 1` = never reached).
    target_hit_ratio: f64,
    cold_queries_to_target: usize,
    warm_queries_to_target: usize,
    cold_final_hit_ratio: f64,
    warm_final_hit_ratio: f64,
    /// Restored entries re-queried as exact hits without re-admission.
    zero_recompute_entries: usize,
    /// Probe answers cross-checked identical (cold vs warm vs Method M).
    answers_cross_checked: usize,
    /// Corruption-injection cases that correctly failed closed.
    corruption_cases_passed: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp11 FAILED: {msg}");
    std::process::exit(1);
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_exp11_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read store dir").flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

fn session(
    ds: &Arc<Dataset>,
    cfg: &CacheConfig,
    store: Option<Arc<CacheStore>>,
) -> (GraphCache, gc_core::RecoveryReport) {
    let method = Box::new(FtvMethod::build(ds, 2));
    match store {
        Some(store) => {
            GraphCache::restore_from(ds.clone(), method, PolicyKind::Hd.make(), cfg.clone(), store)
                .unwrap_or_else(|e| fail(&format!("restore_from errored: {e}")))
        }
        None => (
            GraphCache::with_policy(ds.clone(), method, PolicyKind::Hd, cfg.clone())
                .expect("valid config"),
            gc_core::RecoveryReport::default(),
        ),
    }
}

fn entry_signature(gc: &GraphCache) -> Vec<(u64, QueryKind)> {
    let mut sig: Vec<_> = gc.cache().iter().map(|e| (e.fingerprint, e.kind)).collect();
    sig.sort_unstable_by_key(|&(fp, k)| (fp, k as u8));
    sig
}

/// Run `queries` and return (reports, wall seconds).
fn run_queries(
    gc: &mut GraphCache,
    queries: &[gc_workload::WorkloadQuery],
) -> (Vec<QueryReport>, f64) {
    let start = Instant::now();
    let reports = queries.iter().map(|wq| gc.query(&wq.graph, wq.kind)).collect();
    (reports, start.elapsed().as_secs_f64())
}

/// First query index (1-based) at which the cumulative hit ratio reaches
/// `target`; `len + 1` when never reached.
fn queries_to_target(reports: &[QueryReport], target: f64) -> usize {
    let mut hits = 0usize;
    for (i, r) in reports.iter().enumerate() {
        hits += usize::from(r.any_hit());
        if hits as f64 / (i + 1) as f64 >= target {
            return i + 1;
        }
    }
    reports.len() + 1
}

/// One corruption case: mutate a copy of the store dir, then require a
/// cold-but-correct restore.
fn corruption_case(
    name: &str,
    golden: &Path,
    ds: &Arc<Dataset>,
    cfg: &CacheConfig,
    probe: &[gc_workload::WorkloadQuery],
    mutate: impl FnOnce(&Path),
) {
    let dir = fresh_dir(&format!("corrupt_{name}"));
    copy_dir(golden, &dir);
    mutate(&dir);
    let store = Arc::new(CacheStore::open(&dir).expect("open corrupted dir"));
    let (mut gc, report) = session(ds, cfg, Some(store));
    if report.warm {
        fail(&format!("corruption case {name:?}: corrupted store restored warm"));
    }
    if report.cold_reason.is_none() {
        fail(&format!("corruption case {name:?}: no cold reason reported"));
    }
    if !gc.is_empty() {
        fail(&format!("corruption case {name:?}: cold cache not empty"));
    }
    // Correctness survives: the cold cache still answers exactly.
    for wq in probe.iter().take(3) {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        if got.answer != want.answer {
            fail(&format!("corruption case {name:?}: cold cache answer diverged"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn snapshot_file(dir: &Path) -> PathBuf {
    dir.join("snapshot.gcs")
}

fn journal_file(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("read store dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "gcj"))
        .expect("journal present")
}

fn flip_byte(path: &Path, frac: f64) {
    let mut bytes = std::fs::read(path).expect("read file");
    let pos = ((bytes.len() - 1) as f64 * frac) as usize;
    bytes[pos] ^= 0x40;
    std::fs::write(path, bytes).expect("write file");
}

fn flip_byte_at(path: &Path, pos: usize) {
    let mut bytes = std::fs::read(path).expect("read file");
    bytes[pos] ^= 0x40;
    std::fs::write(path, bytes).expect("write file");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds_size = if smoke { 36 } else { 90 };
    let warmup_queries = if smoke { 160 } else { 700 };
    let probe_queries = if smoke { 80 } else { 300 };
    let capacity = if smoke { 32 } else { 60 };

    let ds = Arc::new(Dataset::new(molecule_dataset(ds_size, 404)));
    let cfg = CacheConfig {
        capacity,
        window_size: 5,
        snapshot_interval: Some((warmup_queries / 4) as u64),
        ..CacheConfig::default()
    };
    let spec = |n, seed| WorkloadSpec {
        n_queries: n,
        pool_size: capacity + capacity / 2,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed,
        ..WorkloadSpec::default()
    };
    // One continuous traffic stream, interrupted by the restart: session A
    // serves the warm-up segment, the probe segment then runs on both the
    // warm-restarted cache and a cold one.
    let full = Workload::generate(ds.graphs(), &spec(warmup_queries + probe_queries, 7));
    let (warmup, probe) = full.queries.split_at(warmup_queries);

    // ---- session A: warm up with persistence, then crash -----------------
    let dir = fresh_dir("store");
    let store = Arc::new(CacheStore::open(&dir).expect("open store"));
    let (mut a, first) = session(&ds, &cfg, Some(store));
    if first.warm {
        fail("fresh directory restored warm");
    }
    run_queries(&mut a, warmup);
    // The warm-up may end exactly on a rotation boundary; top up with extra
    // traffic until the journal tail is non-empty, so the restore exercises
    // genuine journal replay.
    let topup = Workload::generate(ds.graphs(), &spec(64, 1234));
    let mut topup_iter = topup.queries.iter();
    while a.attached_store().expect("store attached").journal_records() == 0 {
        let Some(wq) = topup_iter.next() else {
            fail("journal tail is empty — auto-snapshot cadence leaves nothing to replay")
        };
        a.query(&wq.graph, wq.kind);
    }
    let a_sig = entry_signature(&a);
    let entries_at_crash = a.len();
    a.attached_store().expect("store attached").sync().expect("sync journal");
    drop(a); // crash: no final snapshot

    // Golden copy for the corruption cases before any restore rotates it.
    let golden = fresh_dir("golden");
    copy_dir(&dir, &golden);

    // ---- session B: warm restart ----------------------------------------
    let t = Instant::now();
    let store = Arc::new(CacheStore::open(&dir).expect("reopen store"));
    let (mut warm, report) = session(&ds, &cfg, Some(store));
    let restore_s = t.elapsed().as_secs_f64();
    if !report.warm {
        fail(&format!("restore was cold: {:?}", report.cold_reason));
    }
    if entry_signature(&warm) != a_sig {
        fail("restored entry set diverged from the crashed session");
    }
    let snapshot_bytes = std::fs::metadata(snapshot_file(&dir)).map(|m| m.len()).unwrap_or(0);

    // Zero recomputed admissions: every restored entry is an exact hit.
    let restored: Vec<_> = warm.cache().iter().map(|e| (e.graph.clone(), e.kind)).collect();
    let mut zero_recompute_entries = 0usize;
    for (graph, kind) in restored {
        let r = warm.query(&graph, kind);
        if !r.exact_hit || r.admitted.is_some() {
            fail("restored entry was re-executed or re-admitted");
        }
        zero_recompute_entries += 1;
    }

    // ---- probe: cold vs warm, answers cross-checked ----------------------
    let (mut cold, _) = session(&ds, &cfg, None);
    let (cold_reports, cold_probe_s) = run_queries(&mut cold, probe);
    let (warm_reports, warm_probe_s) = run_queries(&mut warm, probe);
    let mut answers_cross_checked = 0usize;
    for (i, (rc, rw)) in cold_reports.iter().zip(&warm_reports).enumerate() {
        if rc.answer != rw.answer {
            fail(&format!("cold/warm answers diverged at probe query {i}"));
        }
        answers_cross_checked += 1;
    }
    // Spot-check against Method M alone (full sweep would double runtime).
    for wq in probe.iter().step_by(probe_queries.div_ceil(16).max(1)) {
        let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        let got = warm.query(&wq.graph, wq.kind);
        if got.answer != want.answer {
            fail("warm cache diverged from Method M");
        }
    }

    let avg_tests = |reports: &[QueryReport]| {
        reports.iter().map(|r| (r.sub_iso_tests + r.probe_tests) as f64).sum::<f64>()
            / reports.len().max(1) as f64
    };
    let cold_avg_tests = avg_tests(&cold_reports);
    let warm_avg_tests = avg_tests(&warm_reports);
    let warm_final = warm_reports.iter().filter(|r| r.any_hit()).count() as f64
        / warm_reports.len().max(1) as f64;
    let cold_final = cold_reports.iter().filter(|r| r.any_hit()).count() as f64
        / cold_reports.len().max(1) as f64;
    let target_hit_ratio = 0.8 * warm_final;
    let cold_to_target = queries_to_target(&cold_reports, target_hit_ratio);
    let warm_to_target = queries_to_target(&warm_reports, target_hit_ratio);
    if warm_to_target > cold_to_target {
        fail("warm restart reached the target hit ratio later than cold start");
    }

    // ---- corruption injection -------------------------------------------
    type Corruptor = Box<dyn FnOnce(&Path)>;
    let mut corruption_cases_passed = 0usize;
    let cases: Vec<(&str, Corruptor)> = vec![
        ("snapshot_bitflip_head", Box::new(|d: &Path| flip_byte(&snapshot_file(d), 0.1))),
        ("snapshot_bitflip_tail", Box::new(|d: &Path| flip_byte(&snapshot_file(d), 0.95))),
        (
            "snapshot_truncated",
            Box::new(|d: &Path| {
                let p = snapshot_file(d);
                let bytes = std::fs::read(&p).expect("read snapshot");
                std::fs::write(&p, &bytes[..bytes.len() / 2]).expect("truncate snapshot");
            }),
        ),
        // A guaranteed mid-payload byte of the journal's FIRST record
        // (header 44 + frame header 12 + 2): a bit flip inside a
        // *complete* frame is corruption and must go cold — unlike a torn
        // tail, which only drops the incomplete suffix (checked below).
        (
            "journal_bitflip",
            Box::new(|d: &Path| {
                flip_byte_at(&journal_file(d), gc_store::journal::HEADER_LEN + 12 + 2)
            }),
        ),
        (
            "journal_missing",
            Box::new(|d: &Path| std::fs::remove_file(journal_file(d)).expect("remove journal")),
        ),
    ];
    for (name, mutate) in cases {
        corruption_case(name, &golden, &ds, &cfg, probe, mutate);
        corruption_cases_passed += 1;
    }

    // Torn journal tail: NOT corruption — the crash-mid-append signature.
    // Recovery must keep the intact prefix (warm), report the dropped
    // bytes, and stay exact.
    {
        let dir = fresh_dir("torn_tail");
        copy_dir(&golden, &dir);
        let p = journal_file(&dir);
        let bytes = std::fs::read(&p).expect("read journal");
        std::fs::write(&p, &bytes[..bytes.len() - 5]).expect("tear journal");
        let store = Arc::new(CacheStore::open(&dir).expect("open torn dir"));
        let (mut gc, report) = session(&ds, &cfg, Some(store));
        if !report.warm {
            fail(&format!("torn tail went cold instead of warm: {:?}", report.cold_reason));
        }
        if report.journal_torn_bytes == 0 {
            fail("torn tail restored warm but did not report the dropped bytes");
        }
        for wq in probe.iter().take(3) {
            let got = gc.query(&wq.graph, wq.kind);
            let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
            if got.answer != want.answer {
                fail("torn-tail warm cache answer diverged");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        corruption_cases_passed += 1;
    }

    // ---- report ----------------------------------------------------------
    println!(
        "=== Experiment XI: warm restarts ({ds_size} graphs, {warmup_queries} warm-up + \
         {probe_queries} probe queries, capacity {capacity}, crash = snapshot + journal tail) ===\n"
    );
    let rows = vec![
        vec![
            "queries to target hit ratio".to_owned(),
            format!("{cold_to_target}"),
            format!("{warm_to_target}"),
            format!("target {target_hit_ratio:.2}"),
        ],
        vec![
            "probe wall time".to_owned(),
            format!("{:.1} ms", cold_probe_s * 1e3),
            format!("{:.1} ms", warm_probe_s * 1e3),
            format!("{:.2}x", cold_probe_s / warm_probe_s.max(1e-12)),
        ],
        vec![
            "avg sub-iso tests / query".to_owned(),
            format!("{cold_avg_tests:.1}"),
            format!("{warm_avg_tests:.1}"),
            format!("{:.2}x", cold_avg_tests / warm_avg_tests.max(1e-12)),
        ],
        vec![
            "final probe hit ratio".to_owned(),
            format!("{:.1}%", 100.0 * cold_final),
            format!("{:.1}%", 100.0 * warm_final),
            String::new(),
        ],
    ];
    print_table(&["metric", "cold start", "warm restart", "note"], &rows);
    println!(
        "\nrestore: {} entries in {:.1} ms (snapshot {} KiB + {} journal admits / {} evicts); \
         {} restored entries re-served with zero recomputed admissions; \
         {} probe answers cross-checked identical; {} corruption cases failed closed",
        report.entries_restored,
        restore_s * 1e3,
        snapshot_bytes / 1024,
        report.journal_admits,
        report.journal_evicts,
        zero_recompute_entries,
        answers_cross_checked,
        corruption_cases_passed
    );

    let artifact = Exp11Artifact {
        smoke,
        dataset_size: ds_size,
        warmup_queries,
        probe_queries,
        capacity,
        entries_at_crash,
        entries_restored: report.entries_restored,
        journal_admits_replayed: report.journal_admits,
        journal_evicts_replayed: report.journal_evicts,
        restore_s,
        snapshot_bytes,
        cold_probe_s,
        warm_probe_s,
        warm_time_speedup: cold_probe_s / warm_probe_s.max(1e-12),
        cold_avg_tests,
        warm_avg_tests,
        warm_test_speedup: cold_avg_tests / warm_avg_tests.max(1e-12),
        target_hit_ratio,
        cold_queries_to_target: cold_to_target,
        warm_queries_to_target: warm_to_target,
        cold_final_hit_ratio: cold_final,
        warm_final_hit_ratio: warm_final,
        zero_recompute_entries,
        answers_cross_checked,
        corruption_cases_passed,
    };
    match write_artifact("exp11_warm_restart", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_store.json", json) {
                Ok(()) => println!("baseline: BENCH_store.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&golden);
}
