//! Experiment IV (Fig. 2(c)): Cache Replacement views.
//!
//! Reproduces the demo's replacement visualisation: each policy's cache is
//! warmed with the *same* 50 executed queries; the same 10 new workload
//! queries then arrive, forcing one window's worth of replacement. The demo
//! highlights that **different policies evict different graphs** (e.g. the
//! PIN cache evicted ids 39, 41, …, 49 while LRU evicted the oldest).

use gc_bench::write_artifact;
use gc_core::{CacheConfig, EntryId, GraphCache, PolicyKind};
use gc_method::{Dataset, FtvMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Serialize)]
struct ReplacementView {
    policy: String,
    evicted: Vec<EntryId>,
}

fn main() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(100, 66)));
    // Warm workload: 50 distinct queries (the "50 previously executed
    // queries" of the demo); then 10 fresh ones trigger replacement.
    // Drift + repeats: cached entries accumulate *different* utility
    // profiles (some repeat a lot, some save many cheap tests, some few
    // expensive ones), so the five policies rank victims differently.
    let warm_spec = WorkloadSpec {
        n_queries: 400,
        pool_size: 200,
        kind: WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.35 },
        min_edges: 3,
        max_edges: 14,
        seed: 5,
        ..WorkloadSpec::default()
    };
    let warm = Workload::generate(dataset.graphs(), &warm_spec);
    let fresh_spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 60,
        kind: WorkloadKind::Uniform,
        min_edges: 5,
        max_edges: 12,
        seed: 777,
        ..WorkloadSpec::default()
    };
    // Deduplicate so every incoming query is a genuine admission (repeats
    // would be exact hits and never trigger replacement).
    let fresh = {
        let raw = Workload::generate(dataset.graphs(), &fresh_spec);
        let mut seen = std::collections::HashSet::new();
        let mut qs = Vec::new();
        for wq in raw.queries {
            if seen.insert(gc_graph::hash::fingerprint(&wq.graph)) {
                qs.push(wq);
            }
        }
        qs
    };

    let mut views: Vec<ReplacementView> = Vec::new();
    let mut distinct: BTreeMap<String, Vec<EntryId>> = BTreeMap::new();

    println!("=== Experiment IV: Cache Replacement (Fig. 2(c)) ===");
    println!("cache capacity 50, window 10; same warm-up, same 10 incoming queries\n");
    for policy in PolicyKind::all() {
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(FtvMethod::build(&dataset, 2)),
            policy,
            CacheConfig { capacity: 50, window_size: 10, ..CacheConfig::default() },
        )
        .expect("valid config");
        // Warm until the cache is full at 50 entries.
        for wq in &warm.queries {
            gc.query(&wq.graph, wq.kind);
            if gc.len() >= 50 {
                break;
            }
        }
        assert!(gc.len() >= 45, "warm-up must nearly fill the cache (got {})", gc.len());
        // Incoming distinct queries until one full window has been replaced.
        let mut evicted: Vec<EntryId> = Vec::new();
        for wq in &fresh {
            let r = gc.query(&wq.graph, wq.kind);
            evicted.extend(r.evicted);
            if evicted.len() >= 10 {
                break;
            }
        }
        evicted.sort_unstable();
        assert!(!evicted.is_empty(), "incoming window must force replacement");
        println!("{:<5} evicted {:>2} entries: {:?}", policy.to_string(), evicted.len(), evicted);
        distinct.insert(policy.to_string(), evicted.clone());
        views.push(ReplacementView { policy: policy.to_string(), evicted });
    }

    // The demo's point: policies disagree on victims.
    let unique: std::collections::HashSet<&Vec<EntryId>> = distinct.values().collect();
    println!(
        "\ndistinct eviction sets across the 5 policies: {} (paper: \"different graphs are cached out in different caches\")",
        unique.len()
    );
    assert!(unique.len() >= 2, "at least two policies must evict different sets on this workload");
    match write_artifact("exp4_replacement_view", &views) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
