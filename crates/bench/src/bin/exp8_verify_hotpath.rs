//! Experiment VIII: verification hot-path throughput.
//!
//! The ROADMAP's north star demands the verification inner loop run as fast
//! as the hardware allows. This harness measures the per-candidate cost of
//! the two verification tiers on the SI-method path (every dataset graph is
//! a candidate, so the loop shape matches the cache's verify stage exactly):
//!
//! * **from-scratch** — the classic `Engine::verify`: summaries, label
//!   histograms, search order and neighbour signatures recomputed per
//!   candidate pair, fresh mapping/domain allocations per test;
//! * **profiled** — `Engine::verify_candidate`: one `QueryProfile` per
//!   query, dataset-side profiles precomputed at load time, one reusable
//!   `VfScratch` — zero per-candidate setup or allocation.
//!
//! Both tiers are answer-checked against each other on every pair (the run
//! aborts on any divergence, making this a correctness gate as well as a
//! benchmark). Writes `bench_results/exp8_verify_hotpath.json` and — as the
//! repo's verification perf-trajectory artifact — `BENCH_verify.json` at
//! the working-directory root.
//!
//! `--smoke` shrinks the workload for CI regression gating (seconds, not
//! minutes); the committed `BENCH_verify.json` should come from a full run.

use gc_bench::{print_table, write_artifact};
use gc_method::{Dataset, Engine, QueryKind, QueryProfile, VfScratch};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct HotpathPoint {
    engine: String,
    kind: String,
    /// Candidate pairs verified per measured pass.
    candidates: u64,
    old_wall_s: f64,
    new_wall_s: f64,
    /// Per-candidate verification throughput (pairs/second).
    old_candidates_per_s: f64,
    new_candidates_per_s: f64,
    /// Search-step throughput (steps/second).
    old_steps_per_s: f64,
    new_steps_per_s: f64,
    /// `old_wall_s / new_wall_s` — the number that must stay ≥ 1.
    speedup: f64,
}

#[derive(Serialize)]
struct Exp8Artifact {
    smoke: bool,
    dataset_graphs: usize,
    n_queries: usize,
    query_edges: usize,
    repeats: usize,
    points: Vec<HotpathPoint>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_graphs = if smoke { 30 } else { 120 };
    let n_queries = if smoke { 6 } else { 30 };
    let query_edges = 8;
    let repeats = if smoke { 1 } else { 3 };

    let graphs = molecule_dataset(n_graphs, 4242);
    let dataset = Dataset::new(graphs);
    let mut rng = StdRng::seed_from_u64(17);
    let queries: Vec<_> = (0..n_queries)
        .map(|i| {
            extract_query(dataset.graph((i % dataset.len()) as u32), query_edges, &mut rng)
                .expect("molecule graphs have edges")
        })
        .collect();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for engine in [Engine::Vf2, Engine::Ullmann] {
        for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
            let candidates = (queries.len() * dataset.len()) as u64;

            // --- from-scratch tier (and the reference answers) -------------
            let mut old_steps = 0u64;
            let mut old_answers: Vec<bool> = Vec::new();
            let t0 = Instant::now();
            for _ in 0..repeats {
                old_steps = 0;
                old_answers.clear();
                for q in &queries {
                    for gid in 0..dataset.len() as u32 {
                        let target = dataset.graph(gid);
                        let (ok, steps) = match kind {
                            QueryKind::Subgraph => engine.verify(q, target),
                            QueryKind::Supergraph => engine.verify(target, q),
                        };
                        old_steps += steps;
                        old_answers.push(ok);
                    }
                }
            }
            let old_wall = t0.elapsed().as_secs_f64() / repeats as f64;

            // --- profiled tier, answer-checked -----------------------------
            let mut new_steps = 0u64;
            let mut scratch = VfScratch::new();
            let t1 = Instant::now();
            for _ in 0..repeats {
                new_steps = 0;
                let mut at = 0usize;
                for q in &queries {
                    let profile = QueryProfile::new(&dataset, q, kind);
                    for gid in 0..dataset.len() as u32 {
                        let (ok, steps) =
                            engine.verify_candidate(&dataset, &profile, q, gid, &mut scratch);
                        new_steps += steps;
                        assert_eq!(
                            ok, old_answers[at],
                            "profiled path diverged: {engine} {kind} gid={gid}"
                        );
                        at += 1;
                    }
                }
            }
            let new_wall = t1.elapsed().as_secs_f64() / repeats as f64;

            let speedup = old_wall / new_wall.max(1e-12);
            points.push(HotpathPoint {
                engine: engine.as_str().to_owned(),
                kind: kind.as_str().to_owned(),
                candidates,
                old_wall_s: old_wall,
                new_wall_s: new_wall,
                old_candidates_per_s: candidates as f64 / old_wall.max(1e-12),
                new_candidates_per_s: candidates as f64 / new_wall.max(1e-12),
                old_steps_per_s: old_steps as f64 / old_wall.max(1e-12),
                new_steps_per_s: new_steps as f64 / new_wall.max(1e-12),
                speedup,
            });
            rows.push(vec![
                engine.as_str().to_owned(),
                kind.as_str().to_owned(),
                format!("{:.1}k/s", candidates as f64 / old_wall.max(1e-12) / 1e3),
                format!("{:.1}k/s", candidates as f64 / new_wall.max(1e-12) / 1e3),
                format!("{speedup:.2}x"),
            ]);
        }
    }

    println!(
        "=== Experiment VIII: verification hot path (SI path, {} graphs, {} queries, \
         answers cross-checked) ===\n",
        dataset.len(),
        n_queries
    );
    print_table(&["engine", "kind", "from-scratch", "profiled", "speedup"], &rows);
    println!("\nall profiled answers matched the from-scratch tier");

    let artifact = Exp8Artifact {
        smoke,
        dataset_graphs: dataset.len(),
        n_queries,
        query_edges,
        repeats,
        points,
    };
    match write_artifact("exp8_verify_hotpath", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        // Perf trajectory baseline for later PRs, at the repo/working dir
        // root (smoke runs are too noisy to overwrite it).
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_verify.json", json) {
                Ok(()) => println!("baseline: BENCH_verify.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
