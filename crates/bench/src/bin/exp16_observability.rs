//! Experiment XVI: pipeline telemetry — overhead and correctness gates.
//!
//! The observability tier must be (a) nearly free at the default sample
//! rate and (b) truthful. This harness gates both:
//!
//! 1. **Overhead ablation**: the same Zipf workload through three
//!    otherwise-identical `SharedGraphCache`s — tracing *off*
//!    (`trace_sample_rate: 0` + unreachable slow threshold), *sampled*
//!    (the default 1%), and *always-on* (rate 1.0) — with the reps
//!    interleaved so machine drift hits all variants equally. The gate:
//!    median sampled throughput ≥ 98% of median tracing-off throughput.
//! 2. **Conservation**: on the always-on run, every captured trace must
//!    satisfy the pipeline's accounting identities — stage spans sum to
//!    at most the end-to-end time, `answer == definite + survivors`,
//!    `survivors ≤ to_verify ≤ cm_size` — and the sampler must have
//!    captured every query.
//! 3. **Slow-query capture**: with a zero threshold every query is slow
//!    (counter equals the query count, ring holds the most recent);
//!    with an unreachable threshold none are.
//!
//! Any violation exits nonzero. Writes
//! `bench_results/exp16_observability.json` and `BENCH_obs.json` (both
//! smoke and full — the ablation numbers are the artifact). `--smoke`
//! shrinks everything for CI.

use gc_bench::{print_table, write_artifact};
use gc_core::{CacheConfig, PolicyKind, SharedGraphCache};
use gc_method::{Dataset, FtvMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Exp16Artifact {
    smoke: bool,
    dataset_size: usize,
    queries: usize,
    reps: usize,
    /// Median throughput with tracing fully off, queries/s.
    off_median_qps: f64,
    /// Median throughput at the default 1% sample rate, queries/s.
    sampled_median_qps: f64,
    /// Median throughput with every query traced, queries/s.
    on_median_qps: f64,
    /// `1 - sampled/off` (negative means sampled was faster — noise).
    sampled_overhead_pct: f64,
    /// `1 - on/off`.
    on_overhead_pct: f64,
    /// Traces that passed the conservation identities.
    traces_checked: usize,
    /// Traces served by the exact/memo fast paths (zero pipeline counts).
    fast_path_traces: usize,
    /// Queries captured as slow under a zero threshold.
    slow_captured: u64,
    /// Slow-ring traces retrievable after the zero-threshold run.
    slow_ring_len: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp16 FAILED: {msg}");
    std::process::exit(1);
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughput"));
    xs[xs.len() / 2]
}

/// One fresh cache with the given telemetry knobs, the whole workload
/// through it, throughput out.
fn run_once(
    dataset: &Arc<Dataset>,
    workload: &Workload,
    rate: f64,
    threshold: Duration,
) -> (f64, SharedGraphCache) {
    let gc = SharedGraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, 2)),
        PolicyKind::Hd,
        CacheConfig {
            capacity: 24,
            window_size: 3,
            trace_sample_rate: rate,
            slow_query_threshold: threshold,
            ..CacheConfig::default()
        },
    )
    .expect("valid config");
    let t0 = Instant::now();
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    let qps = workload.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    (qps, gc)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds_size = if smoke { 24 } else { 60 };
    let n_queries = if smoke { 120 } else { 600 };
    let reps = if smoke { 3 } else { 5 };
    let never = Duration::from_secs(3600);

    let dataset = Arc::new(Dataset::new(molecule_dataset(ds_size, 1600)));
    let spec = WorkloadSpec {
        n_queries,
        pool_size: 50,
        kind: WorkloadKind::Zipf { skew: 1.2 },
        seed: 16,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // ---- phase 1: interleaved overhead ablation --------------------------
    // Default rate comes from CacheConfig::default() so the gate measures
    // what users actually get out of the box.
    let default_rate = CacheConfig::default().trace_sample_rate;
    let (mut off, mut sampled, mut on) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..reps {
        off.push(run_once(&dataset, &workload, 0.0, never).0);
        sampled.push(run_once(&dataset, &workload, default_rate, never).0);
        on.push(run_once(&dataset, &workload, 1.0, never).0);
    }
    let off_median_qps = median(off);
    let sampled_median_qps = median(sampled);
    let on_median_qps = median(on);
    if sampled_median_qps < off_median_qps * 0.98 {
        fail(&format!(
            "default sampling costs more than 2%: {sampled_median_qps:.0} qps sampled vs \
             {off_median_qps:.0} qps off"
        ));
    }

    // ---- phase 2: conservation on an always-on run -----------------------
    let (_, traced) = run_once(&dataset, &workload, 1.0, never);
    let telemetry = traced.telemetry();
    if telemetry.sampled_count() != n_queries as u64 {
        fail(&format!(
            "rate 1.0 must sample every query: {} of {n_queries}",
            telemetry.sampled_count()
        ));
    }
    if telemetry.total().count() != n_queries as u64 {
        fail("total histogram must see every query");
    }
    let traces = telemetry.recent_traces(n_queries);
    if traces.is_empty() {
        fail("always-on run produced no retrievable traces");
    }
    let mut fast_path_traces = 0usize;
    for t in &traces {
        // Span floors lose <1 µs each; the spans all close before the
        // end-to-end clock is read, so the sum may never exceed total by
        // more than that truncation slack.
        if t.stage_sum_us() > t.total_us + 2 {
            fail(&format!(
                "trace seq {}: stage sum {} µs exceeds total {} µs",
                t.seq,
                t.stage_sum_us(),
                t.total_us
            ));
        }
        match t.outcome.as_str() {
            "pipeline" => {
                if t.answer != t.definite + t.survivors {
                    fail(&format!(
                        "trace seq {}: answer {} != definite {} + survivors {}",
                        t.seq, t.answer, t.definite, t.survivors
                    ));
                }
                if t.survivors > t.to_verify {
                    fail(&format!("trace seq {}: more survivors than candidates verified", t.seq));
                }
                if t.to_verify > t.cm_size {
                    fail(&format!("trace seq {}: to_verify exceeds the candidate set", t.seq));
                }
            }
            "exact" | "memo" => {
                // Fast paths bypass the pipeline: no stage counts at all.
                if t.cm_size != 0 || t.to_verify != 0 || t.verify_steps != 0 {
                    fail(&format!(
                        "trace seq {}: {} fast path did pipeline work",
                        t.seq, t.outcome
                    ));
                }
                fast_path_traces += 1;
            }
            other => fail(&format!("trace seq {}: unknown outcome {other:?}", t.seq)),
        }
    }
    if fast_path_traces == 0 {
        fail("Zipf workload must produce exact/memo fast-path traces");
    }

    // ---- phase 3: slow-query capture -------------------------------------
    let (_, all_slow) = run_once(&dataset, &workload, 0.0, Duration::ZERO);
    let slow_captured = all_slow.telemetry().slow_count();
    if slow_captured != n_queries as u64 {
        fail(&format!("zero threshold must flag every query slow: {slow_captured} of {n_queries}"));
    }
    let slow_ring = all_slow.telemetry().recent_slow(n_queries);
    let slow_ring_len = slow_ring.len();
    if slow_ring_len == 0 || !slow_ring.iter().all(|t| t.slow) {
        fail("slow ring must hold the most recent slow traces, all flagged slow");
    }
    // The "off" ablation caches used an unreachable threshold; re-check on
    // a fresh run that nothing is spuriously slow.
    let (_, none_slow) = run_once(&dataset, &workload, 0.0, never);
    if none_slow.telemetry().slow_count() != 0 {
        fail("unreachable threshold must capture no slow queries");
    }

    // ---- report ----------------------------------------------------------
    let sampled_overhead_pct = 100.0 * (1.0 - sampled_median_qps / off_median_qps);
    let on_overhead_pct = 100.0 * (1.0 - on_median_qps / off_median_qps);
    println!(
        "=== Experiment XVI: pipeline telemetry ({ds_size} graphs, {n_queries} Zipf queries, \
         {reps} interleaved reps) ===\n"
    );
    let rows = vec![
        vec!["tracing off".to_owned(), format!("{off_median_qps:.0} qps"), "baseline".to_owned()],
        vec![
            format!("sampled ({:.0}%)", default_rate * 100.0),
            format!("{sampled_median_qps:.0} qps"),
            format!("{sampled_overhead_pct:+.2}% (gate: <= 2%)"),
        ],
        vec![
            "always-on".to_owned(),
            format!("{on_median_qps:.0} qps"),
            format!("{on_overhead_pct:+.2}%"),
        ],
        vec![
            "conservation".to_owned(),
            format!("{} traces checked", traces.len()),
            format!("{fast_path_traces} fast-path"),
        ],
        vec![
            "slow capture".to_owned(),
            format!("{slow_captured} flagged"),
            format!("{slow_ring_len} in ring"),
        ],
    ];
    print_table(&["variant", "median throughput", "notes"], &rows);

    let artifact = Exp16Artifact {
        smoke,
        dataset_size: ds_size,
        queries: n_queries,
        reps,
        off_median_qps,
        sampled_median_qps,
        on_median_qps,
        sampled_overhead_pct,
        on_overhead_pct,
        traces_checked: traces.len(),
        fast_path_traces,
        slow_captured,
        slow_ring_len,
    };
    match write_artifact("exp16_observability", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    // Unlike most experiments this baseline is written on smoke too: the
    // ablation percentages are the deliverable, and CI should refresh them.
    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => match std::fs::write("BENCH_obs.json", json) {
            Ok(()) => println!("baseline: BENCH_obs.json"),
            Err(e) => eprintln!("baseline write failed: {e}"),
        },
        Err(e) => eprintln!("baseline serialization failed: {e}"),
    }
}
