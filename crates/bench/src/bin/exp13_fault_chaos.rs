//! Experiment XIII: live chaos — the cache under injected faults.
//!
//! The durability work (fsync policy, degraded-mode persistence, torn-tail
//! recovery) is only trustworthy if it holds under *adversarial* fault
//! schedules, not just the happy path. This harness replays a Zipf
//! workload while a deterministic [`gc_core::persist::FaultPlan`] injects
//! faults at every persistence I/O site and into the worker pool, and
//! gates the full contract:
//!
//! * **A — transient I/O errors**: `ErrOnce` at each journal/snapshot
//!   site; the retry budget absorbs them and persistence stays healthy.
//! * **B — persistent failure**: every append fails; the circuit breaker
//!   trips to degraded and the cache keeps serving *exact* answers
//!   memory-only (every answer cross-checked against Method M alone).
//! * **C — recovery**: the fault clears; a recovery probe cuts a fresh
//!   snapshot, re-arms durability, and the directory restores warm.
//! * **D — task panics**: injected worker-pool panics; lost probe/verify
//!   chunks are redone inline and answers never change.
//! * **E — crash + bounded loss**: under `FsyncPolicy::EveryN(n)`, a
//!   simulated crash (journal truncated at any point at or past the last
//!   fsync) recovers an exact record prefix and loses at most
//!   `n - 1 + max_append_batch` records.
//!
//! Any divergence or failed recovery **exits nonzero**. Writes
//! `bench_results/exp13_fault_chaos.json` and — as the repo's fault
//!-tolerance trajectory artifact — `BENCH_chaos.json` on full runs.
//! `--smoke` shrinks everything for CI.

use gc_bench::{print_table, write_artifact};
use gc_core::persist::{CacheStore, Failpoint, FaultPlan, FaultSite};
use gc_core::{CacheConfig, FsyncPolicy, GraphCache, PersistHealth, PolicyKind};
use gc_method::{execute_base, Dataset, Engine, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Exp13Artifact {
    smoke: bool,
    dataset_size: usize,
    chaos_queries: usize,
    /// Every answer produced under chaos, cross-checked against Method M.
    answers_cross_checked: usize,
    /// Of those, answers served while persistence was degraded/disabled.
    answers_served_degraded: usize,
    /// Queries answered / queries issued — the cache never refuses one.
    availability: f64,
    /// Transient-fault sites that were absorbed by the retry budget.
    transient_sites_absorbed: usize,
    /// Injected faults that actually fired across all segments.
    faults_fired: usize,
    /// Worker-pool tasks killed by injected panics (segment D).
    task_panics_injected: usize,
    /// Recovery: snapshot generation before the outage and after re-arm.
    generation_before_outage: u64,
    generation_after_recovery: u64,
    /// Segment E: group-commit bound and the worst observed loss.
    fsync_every_n: u64,
    bounded_loss_limit: u64,
    max_records_lost: u64,
    crash_cuts_tested: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp13 FAILED: {msg}");
    std::process::exit(1);
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_exp13_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(n: usize) -> Arc<Dataset> {
    Arc::new(Dataset::new(molecule_dataset(n, 1313)))
}

fn workload(ds: &Arc<Dataset>, n: usize, seed: u64) -> Workload {
    let spec = WorkloadSpec {
        n_queries: n,
        pool_size: 24,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed,
        ..WorkloadSpec::default()
    };
    Workload::generate(ds.graphs(), &spec)
}

/// Run `w` through `gc`, cross-checking every answer against Method M
/// alone. Returns (answers checked, answers served while not healthy).
fn run_checked(gc: &mut GraphCache, ds: &Arc<Dataset>, w: &Workload, what: &str) -> (usize, usize) {
    let mut checked = 0usize;
    let mut degraded = 0usize;
    for wq in &w.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        if got.answer != want.answer {
            fail(&format!("{what}: answer diverged from Method M under injected faults"));
        }
        checked += 1;
        if gc.persist_health().is_some_and(|h| h != PersistHealth::Healthy) {
            degraded += 1;
        }
    }
    (checked, degraded)
}

fn cache(ds: &Arc<Dataset>, cfg: CacheConfig) -> GraphCache {
    GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds_size = if smoke { 24 } else { 60 };
    let seg_queries = if smoke { 40 } else { 160 };
    // Deliberately not a multiple of the EveryN(4) group size so the tail of
    // the journal is unsynced and the cut sweep exercises real loss windows.
    let crash_records = if smoke { 25 } else { 81 };

    let ds = dataset(ds_size);
    let cfg = CacheConfig {
        capacity: 24,
        window_size: 3,
        min_admit_tests: 0,
        persist_retries: 2,
        ..CacheConfig::default()
    };
    let mut answers_cross_checked = 0usize;
    let mut answers_served_degraded = 0usize;
    let mut faults_fired = 0usize;

    // ---- segment A: transient errors absorbed by retries ------------------
    // One ErrOnce per append plus one SlowIo stall: the retry budget (2)
    // must absorb each without tripping the breaker. Rotation-site
    // transients are covered by gc-store's own tests; here the contract is
    // end-to-end health.
    let dir_a = fresh_dir("transient");
    let store_a = Arc::new(CacheStore::open(&dir_a).expect("open store"));
    let mut gc = cache(&ds, cfg.clone());
    gc.attach_store(Arc::clone(&store_a)).expect("attach");
    let plan = Arc::new(FaultPlan::seeded(1));
    let transient_sites: &[Failpoint] = &[
        Failpoint::ErrOnce,
        Failpoint::SlowIo { millis: 2 },
        Failpoint::ErrOnce,
        Failpoint::ErrOnce,
    ];
    for fp in transient_sites {
        plan.arm(FaultSite::JournalAppend, *fp);
    }
    store_a.set_fault_plan(Some(Arc::clone(&plan)));
    let (c, d) = run_checked(&mut gc, &ds, &workload(&ds, seg_queries, 2), "segment A");
    answers_cross_checked += c;
    answers_served_degraded += d;
    if gc.persist_health() != Some(PersistHealth::Healthy) {
        fail("segment A: transient faults tripped the breaker despite the retry budget");
    }
    let transient_sites_absorbed = plan.fired();
    if transient_sites_absorbed == 0 {
        fail("segment A: no transient fault fired — segment is vacuous");
    }
    faults_fired += transient_sites_absorbed;
    store_a.set_fault_plan(None);
    drop(gc);
    let _ = std::fs::remove_dir_all(&dir_a);

    // ---- segments B + C: persistent outage, then recovery -----------------
    let dir_b = fresh_dir("outage");
    let store_b = Arc::new(CacheStore::open(&dir_b).expect("open store"));
    let mut gc = cache(&ds, cfg.clone());
    gc.attach_store(Arc::clone(&store_b)).expect("attach");
    let generation_before_outage = store_b.generation().unwrap_or(0);
    let plan = Arc::new(FaultPlan::seeded(7));
    plan.arm(FaultSite::JournalAppend, Failpoint::ErrAfter { n: 0 });
    plan.arm(FaultSite::SnapshotWrite, Failpoint::ErrAfter { n: 0 });
    store_b.set_fault_plan(Some(Arc::clone(&plan)));
    let (c, d) = run_checked(&mut gc, &ds, &workload(&ds, seg_queries, 3), "segment B");
    answers_cross_checked += c;
    answers_served_degraded += d;
    if gc.persist_health() != Some(PersistHealth::Degraded) {
        fail("segment B: persistent append failure did not degrade persistence");
    }
    if d == 0 {
        fail("segment B: no answer was served degraded — segment is vacuous");
    }
    let stats = gc.stats();
    if stats.persist_errors == 0 || stats.journal_records_buffered == 0 {
        fail("segment B: degraded gauges not populated");
    }
    faults_fired += plan.fired();

    // C: outage ends; probes must re-arm durability.
    store_b.set_fault_plan(None);
    let probe_w = workload(&ds, 8, 4);
    let deadline = Instant::now() + Duration::from_secs(20);
    while gc.persist_health() != Some(PersistHealth::Healthy) {
        if Instant::now() >= deadline {
            fail("segment C: recovery probe never re-armed persistence");
        }
        let (c, d) = run_checked(&mut gc, &ds, &probe_w, "segment C");
        answers_cross_checked += c;
        answers_served_degraded += d;
        std::thread::sleep(Duration::from_millis(5));
    }
    let generation_after_recovery = store_b.generation().unwrap_or(0);
    if generation_after_recovery <= generation_before_outage {
        fail("segment C: recovery did not cut a fresh snapshot generation");
    }
    if gc.stats().journal_records_buffered != 0 {
        fail("segment C: buffered-records gauge not reset by the recovery snapshot");
    }
    drop(gc);
    let (mut warm, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        cfg.clone(),
        Arc::new(CacheStore::open(&dir_b).expect("reopen store")),
    )
    .unwrap_or_else(|e| fail(&format!("segment C: restore errored: {e}")));
    if !report.warm {
        fail(&format!("segment C: post-recovery restore was cold: {:?}", report.cold_reason));
    }
    let (c, _) = run_checked(&mut warm, &ds, &workload(&ds, 8, 5), "segment C restore");
    answers_cross_checked += c;
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir_b);

    // ---- segment D: injected worker-pool panics ---------------------------
    // The sharded front-end routes shard probes and candidate verification
    // through the process-wide pool (threads > 1, parallel_threshold 1
    // forces dispatch); every lost chunk must be redone inline.
    let gc = gc_core::SharedGraphCache::with_policy(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { threads: 4, shards: 4, parallel_threshold: 1, ..cfg.clone() },
    )
    .expect("valid config");
    let plan = Arc::new(FaultPlan::seeded(13));
    for _ in 0..64 {
        plan.arm(FaultSite::Task, Failpoint::PanicAt { n: 3 });
    }
    // Injected panics are *expected* here; silence the default hook's
    // backtrace spam for the duration of the segment.
    std::panic::set_hook(Box::new(|_| {}));
    gc_core::global_pool().set_fault_plan(Some(Arc::clone(&plan)));
    for wq in &workload(&ds, seg_queries, 6).queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        if got.answer != want.answer {
            fail("segment D: answer diverged from Method M under injected task panics");
        }
        answers_cross_checked += 1;
    }
    gc_core::global_pool().set_fault_plan(None);
    let _ = std::panic::take_hook();
    let task_panics_injected = plan.fired();
    if task_panics_injected == 0 {
        fail("segment D: no task panic fired — segment is vacuous");
    }
    faults_fired += task_panics_injected;
    drop(gc);

    // ---- segment E: crash + bounded loss under group commit ---------------
    // Build a journal of single-op appends under EveryN(n), then simulate a
    // crash at every byte the OS could have persisted (any cut at or past
    // the last fsync) and check the recovery contract: an exact record
    // prefix, at least the synced records, at most n-1+max_batch lost.
    let fsync_every_n = 4u64;
    let dir_e = fresh_dir("crash");
    let store_e = Arc::new(CacheStore::open(&dir_e).expect("open store"));
    {
        // Empty base snapshot so recovery is snapshot + pure journal tail.
        let mut seeder = cache(&ds, cfg.clone());
        seeder.attach_store(Arc::clone(&store_e)).expect("base snapshot");
        seeder.detach_store();
    }
    store_e.set_fsync_policy(FsyncPolicy::EveryN(fsync_every_n));
    let seed_w = workload(&ds, crash_records, 8);
    let mut journaled = 0u64;
    for (i, wq) in seed_w.queries.iter().enumerate() {
        let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        let answer: Vec<u32> = want.answer.to_vec().iter().map(|&g| g as u32).collect();
        store_e
            .append(&[gc_store::JournalOp::Admit {
                orig_id: i as u32,
                now: i as u64 + 1,
                kind: wq.kind,
                base_tests: want.sub_iso_tests as u64,
                base_cost: want.sub_iso_tests as u64,
                graph: &wq.graph,
                answer: &answer,
            }])
            .expect("append");
        journaled += 1;
    }
    let synced_bytes = store_e.journal_synced_bytes();
    let synced_records = store_e.journal_synced_records();
    let max_batch = store_e.max_append_batch();
    let bounded_loss_limit = fsync_every_n - 1 + max_batch;
    if journaled - synced_records > bounded_loss_limit {
        fail("segment E: unsynced backlog already exceeds the documented bound");
    }
    let journal_path = std::fs::read_dir(&dir_e)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "gcj"))
        .expect("journal present");
    let full_bytes = std::fs::read(&journal_path).expect("read journal");
    drop(store_e);

    let mut max_records_lost = 0u64;
    let mut crash_cuts_tested = 0usize;
    // Every cut the OS could leave behind: from the fsync'd prefix to the
    // full file. Step 1 in smoke would be hundreds of restores; sample.
    let step = if smoke { 7 } else { 3 };
    let mut cuts: Vec<usize> = (synced_bytes as usize..full_bytes.len()).step_by(step).collect();
    cuts.push(full_bytes.len());
    for cut in cuts {
        std::fs::write(&journal_path, &full_bytes[..cut]).expect("truncate journal");
        let store = Arc::new(CacheStore::open(&dir_e).expect("reopen store"));
        let state = match store.load() {
            gc_core::LoadOutcome::Warm(state) => state,
            gc_core::LoadOutcome::Cold { reason } => {
                fail(&format!("segment E: crash cut at {cut} went cold: {reason}"))
            }
        };
        let recovered = state.journal.len() as u64;
        if recovered < synced_records {
            fail("segment E: recovery lost fsync'd records");
        }
        // Exact prefix: record i of the recovery is record i of the write
        // order (spot-check the last recovered record's timestamp, which
        // was written as its 1-based index).
        if let Some(gc_store::JournalRecord::Admit { now, .. }) = state.journal.last() {
            if *now != recovered {
                fail("segment E: recovered journal is not an exact write-order prefix");
            }
        }
        let lost = journaled - recovered.min(journaled);
        max_records_lost = max_records_lost.max(lost);
        if lost > bounded_loss_limit {
            fail(&format!(
                "segment E: lost {lost} records at cut {cut}, bound is {bounded_loss_limit}"
            ));
        }
        crash_cuts_tested += 1;
    }
    let _ = std::fs::remove_dir_all(&dir_e);

    // ---- report -----------------------------------------------------------
    let chaos_queries = answers_cross_checked;
    let availability = 1.0; // every issued query was answered (or we exited)
    println!(
        "=== Experiment XIII: fault chaos ({ds_size} graphs, {chaos_queries} answers \
         cross-checked, fsync EveryN({fsync_every_n})) ===\n"
    );
    let rows = vec![
        vec![
            "availability under chaos".to_owned(),
            format!("{:.1}%", 100.0 * availability),
            format!("{chaos_queries} answers, all exact"),
        ],
        vec![
            "degraded-mode service".to_owned(),
            format!("{answers_served_degraded} answers"),
            "memory-only, all exact".to_owned(),
        ],
        vec![
            "transient faults absorbed".to_owned(),
            format!("{transient_sites_absorbed}"),
            "retries, breaker never tripped".to_owned(),
        ],
        vec![
            "task panics survived".to_owned(),
            format!("{task_panics_injected}"),
            "lost chunks redone inline".to_owned(),
        ],
        vec![
            "recovery".to_owned(),
            format!("gen {generation_before_outage} -> {generation_after_recovery}"),
            "fresh snapshot re-armed durability".to_owned(),
        ],
        vec![
            "crash loss bound".to_owned(),
            format!("max {max_records_lost} of {journaled} records"),
            format!("bound {bounded_loss_limit}, {crash_cuts_tested} cuts"),
        ],
    ];
    print_table(&["contract", "observed", "note"], &rows);

    let artifact = Exp13Artifact {
        smoke,
        dataset_size: ds_size,
        chaos_queries,
        answers_cross_checked,
        answers_served_degraded,
        availability,
        transient_sites_absorbed,
        faults_fired,
        task_panics_injected,
        generation_before_outage,
        generation_after_recovery,
        fsync_every_n,
        bounded_loss_limit,
        max_records_lost,
        crash_cuts_tested,
    };
    match write_artifact("exp13_fault_chaos", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_chaos.json", json) {
                Ok(()) => println!("baseline: BENCH_chaos.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
