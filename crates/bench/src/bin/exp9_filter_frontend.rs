//! Experiment IX: filter front-end throughput.
//!
//! PR 2 made verification allocation-free, which moved the per-query
//! bottleneck to the filtering front-end: feature extraction, the FTV trie
//! filter, and the containment-index probes. This harness measures that
//! front-end per query across two tiers:
//!
//! * **old** — the pre-PR implementations kept in `gc_index::reference`:
//!   materialized path enumeration (`Vec<Vec<Label>>` per query), the
//!   pointer-chasing node trie, and HashMap-postings candidate accumulation;
//! * **new** — the streaming/arena tier: one [`ExtractScratch`] extraction
//!   per query shared by both index probes, the arena [`PathTrie`]
//!   intersecting word-parallel into a reused bitset, and the flat-postings
//!   [`QueryIndex`] probed through a [`CandScratch`].
//!
//! Both tiers are answer-cross-checked on every query — feature items, both
//! trie candidate sets and both containment candidate lists must match
//! exactly; any divergence **exits nonzero**, making this a correctness gate
//! as well as a benchmark. Writes
//! `bench_results/exp9_filter_frontend.json` and — as the repo's
//! filter perf-trajectory artifact — `BENCH_filter.json` at the
//! working-directory root.
//!
//! `--smoke` shrinks the workload for CI regression gating (seconds, not
//! minutes); the committed `BENCH_filter.json` should come from a full run.

use gc_bench::{print_table, write_artifact};
use gc_graph::BitSet;
use gc_index::reference::{feature_vec_materialized, RefPathTrie, RefQueryIndex};
use gc_index::{CandScratch, ExtractScratch, FeatureConfig, PathTrie, QueryIndex, TrieScratch};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct StageWall {
    extract_s: f64,
    trie_s: f64,
    query_index_s: f64,
}

#[derive(Serialize)]
struct Exp9Artifact {
    smoke: bool,
    dataset_graphs: usize,
    cached_entries: usize,
    n_queries: usize,
    query_edges: usize,
    feature_len: usize,
    repeats: usize,
    old_wall_s: f64,
    new_wall_s: f64,
    old_queries_per_s: f64,
    new_queries_per_s: f64,
    old_stages: StageWall,
    new_stages: StageWall,
    /// `old_wall_s / new_wall_s` — the number that must stay ≥ 1.
    speedup: f64,
}

/// Per-query front-end answers of one tier, for the cross-check.
#[derive(PartialEq)]
struct Answers {
    features: Vec<(u64, u32)>,
    sub_filter: BitSet,
    super_filter: BitSet,
    sub_cands: Vec<u32>,
    super_cands: Vec<u32>,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp9 cross-check FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_graphs = if smoke { 30 } else { 120 };
    let n_cached = if smoke { 16 } else { 48 };
    let n_queries = if smoke { 8 } else { 30 };
    let query_edges = 8;
    let repeats = if smoke { 2 } else { 5 };
    let feature_len = 3;
    let cfg = FeatureConfig::with_max_len(feature_len);

    let graphs = molecule_dataset(n_graphs, 4242);
    let mut rng = StdRng::seed_from_u64(17);
    let queries: Vec<_> = (0..n_queries)
        .map(|i| {
            extract_query(&graphs[i % graphs.len()], query_edges, &mut rng)
                .expect("molecule graphs have edges")
        })
        .collect();

    // Both index families built over the same data at the same config.
    let new_trie = PathTrie::build(&graphs, cfg);
    let old_trie = RefPathTrie::build(&graphs, cfg);
    let mut new_qi = QueryIndex::new(cfg);
    let mut old_qi = RefQueryIndex::new(cfg);
    for i in 0..n_cached {
        let cached = extract_query(&graphs[(i * 7) % graphs.len()], 6, &mut rng)
            .expect("molecule graphs have edges");
        new_qi.insert(i as u32, &cached);
        old_qi.insert(i as u32, &cached);
    }

    // --- old tier (and the reference answers) ---------------------------
    let mut old_answers: Vec<Answers> = Vec::new();
    let mut old_stage = StageWall { extract_s: 0.0, trie_s: 0.0, query_index_s: 0.0 };
    let t0 = Instant::now();
    for rep in 0..repeats {
        old_answers.clear();
        for q in &queries {
            let te = Instant::now();
            let qf = feature_vec_materialized(q, &cfg);
            let tt = Instant::now();
            let sub_filter = old_trie.candidates(q);
            let super_filter = old_trie.super_candidates(q);
            let tq = Instant::now();
            let sub_cands = old_qi.sub_case_candidates(&qf);
            let super_cands = old_qi.super_case_candidates(&qf);
            let end = Instant::now();
            if rep == 0 {
                old_stage.extract_s += (tt - te).as_secs_f64();
                old_stage.trie_s += (tq - tt).as_secs_f64();
                old_stage.query_index_s += (end - tq).as_secs_f64();
            }
            old_answers.push(Answers {
                features: qf.items().to_vec(),
                sub_filter,
                super_filter,
                sub_cands,
                super_cands,
            });
        }
    }
    let old_wall = t0.elapsed().as_secs_f64() / repeats as f64;

    // --- new tier, answer-checked ---------------------------------------
    let mut extract = ExtractScratch::new();
    let mut cand = CandScratch::new();
    let mut trie_scratch = TrieScratch::new();
    let mut sub_filter = BitSet::new(new_trie.dataset_size());
    let mut super_filter = BitSet::new(new_trie.dataset_size());
    let mut new_stage = StageWall { extract_s: 0.0, trie_s: 0.0, query_index_s: 0.0 };
    let t1 = Instant::now();
    for rep in 0..repeats {
        for (qi_at, q) in queries.iter().enumerate() {
            let te = Instant::now();
            let features = extract.extract(q, &cfg);
            let tt = Instant::now();
            new_trie.candidates_into(q, &mut trie_scratch, &mut sub_filter);
            new_trie.super_candidates_into(q, &mut trie_scratch, &mut super_filter);
            let tq = Instant::now();
            new_qi.sub_case_candidates_into(features, &mut cand);
            let sub_ok = cand.candidates() == old_answers[qi_at].sub_cands.as_slice();
            let sub_len = cand.candidates().len();
            new_qi.super_case_candidates_into(features, &mut cand);
            let end = Instant::now();
            if rep == 0 {
                new_stage.extract_s += (tt - te).as_secs_f64();
                new_stage.trie_s += (tq - tt).as_secs_f64();
                new_stage.query_index_s += (end - tq).as_secs_f64();
            }
            // Cross-check every stage against the old tier.
            let want = &old_answers[qi_at];
            if features.items() != want.features.as_slice() {
                fail(&format!("feature items diverged on query {qi_at}"));
            }
            if sub_filter != want.sub_filter {
                fail(&format!("trie sub-filter diverged on query {qi_at}"));
            }
            if super_filter != want.super_filter {
                fail(&format!("trie super-filter diverged on query {qi_at}"));
            }
            if !sub_ok {
                fail(&format!("sub-case candidates diverged on query {qi_at} ({sub_len} found)"));
            }
            if cand.candidates() != want.super_cands.as_slice() {
                fail(&format!("super-case candidates diverged on query {qi_at}"));
            }
        }
    }
    let new_wall = t1.elapsed().as_secs_f64() / repeats as f64;

    let speedup = old_wall / new_wall.max(1e-12);
    let nq = n_queries as f64;
    println!(
        "=== Experiment IX: filter front-end ({} graphs, {} cached entries, {} queries, \
         answers cross-checked) ===\n",
        n_graphs, n_cached, n_queries
    );
    let rows = vec![
        vec![
            "extract".to_owned(),
            format!("{:.1}k/s", nq / old_stage.extract_s.max(1e-12) / 1e3),
            format!("{:.1}k/s", nq / new_stage.extract_s.max(1e-12) / 1e3),
            format!("{:.2}x", old_stage.extract_s / new_stage.extract_s.max(1e-12)),
        ],
        vec![
            "ftv-trie".to_owned(),
            format!("{:.1}k/s", nq / old_stage.trie_s.max(1e-12) / 1e3),
            format!("{:.1}k/s", nq / new_stage.trie_s.max(1e-12) / 1e3),
            format!("{:.2}x", old_stage.trie_s / new_stage.trie_s.max(1e-12)),
        ],
        vec![
            "query-index".to_owned(),
            format!("{:.1}k/s", nq / old_stage.query_index_s.max(1e-12) / 1e3),
            format!("{:.1}k/s", nq / new_stage.query_index_s.max(1e-12) / 1e3),
            format!("{:.2}x", old_stage.query_index_s / new_stage.query_index_s.max(1e-12)),
        ],
        vec![
            "front-end".to_owned(),
            format!("{:.1}k/s", nq / old_wall.max(1e-12) / 1e3),
            format!("{:.1}k/s", nq / new_wall.max(1e-12) / 1e3),
            format!("{speedup:.2}x"),
        ],
    ];
    print_table(&["stage", "old", "new", "speedup"], &rows);
    println!("\nall new-tier answers matched the reference tier");

    let artifact = Exp9Artifact {
        smoke,
        dataset_graphs: n_graphs,
        cached_entries: n_cached,
        n_queries,
        query_edges,
        feature_len,
        repeats,
        old_wall_s: old_wall,
        new_wall_s: new_wall,
        old_queries_per_s: nq / old_wall.max(1e-12),
        new_queries_per_s: nq / new_wall.max(1e-12),
        old_stages: old_stage,
        new_stages: new_stage,
        speedup,
    };
    match write_artifact("exp9_filter_frontend", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        // Perf trajectory baseline for later PRs, at the repo/working dir
        // root (smoke runs are too noisy to overwrite it).
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_filter.json", json) {
                Ok(()) => println!("baseline: BENCH_filter.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
