//! Experiment II (paper §3.1.II): Speedup versus Overhead.
//!
//! Claims to reproduce (shape, not absolute numbers):
//!
//! 1. increasing the FTV feature size by one (`L → L+1`) improves average
//!    query time by roughly 10% but ~doubles the index space;
//! 2. GC over FTV(L) achieves large query-time speedups with *negligible*
//!    space overhead — the paper reports GC memory just over 1% of the FTV
//!    indices with speedups up to 40× on the AIDS dataset.

use gc_bench::{print_table, run_base, run_cached, write_artifact};
use gc_core::{CacheConfig, GraphCache, PolicyKind};
use gc_method::{Dataset, FtvMethod, FtvTreeMethod, Method};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Exp2Result {
    l: usize,
    ftv_l_avg_time_ms: f64,
    ftv_l1_avg_time_ms: f64,
    time_change_pct: f64,
    index_l_bytes: usize,
    index_l1_bytes: usize,
    space_ratio: f64,
    gc_time_speedup: f64,
    gc_test_speedup: f64,
    gc_memory_bytes: usize,
    gc_memory_vs_index_pct: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_graphs = if quick { 200 } else { 800 };
    let n_queries = if quick { 600 } else { 3000 };
    let l = 2usize;

    let dataset = Arc::new(Dataset::new(molecule_dataset(n_graphs, 4242)));
    let spec = WorkloadSpec {
        n_queries,
        pool_size: n_queries / 10,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        min_edges: 4,
        max_edges: 12,
        seed: 99,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // --- FTV(L) vs FTV(L+1): filtering power vs space -----------------------
    let ftv_l = FtvMethod::build(&dataset, l);
    let ftv_l1 = FtvMethod::build(&dataset, l + 1);
    let index_l = ftv_l.index_memory_bytes();
    let index_l1 = ftv_l1.index_memory_bytes();
    let base_l = run_base(&dataset, &ftv_l, &workload);
    let base_l1 = run_base(&dataset, &ftv_l1, &workload);

    // --- alternative feature family: trees of the same size ------------------
    let ftv_tree = FtvTreeMethod::build(&dataset, l);
    let index_tree = ftv_tree.index_memory_bytes();
    let base_tree = run_base(&dataset, &ftv_tree, &workload);

    // --- GC over FTV(L) ------------------------------------------------------
    let config = CacheConfig { capacity: 50, window_size: 10, ..CacheConfig::default() };
    let gc_run = run_cached(
        &dataset,
        Box::new(FtvMethod::build(&dataset, l)),
        PolicyKind::Hd,
        &config,
        &workload,
        &base_l,
    );
    // Re-run to capture final memory via a live instance (run_cached reports
    // it, but we also want the entry count for the table).
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(&dataset, l)),
        PolicyKind::Hd,
        config,
    )
    .expect("valid config");
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }

    let time_change = 100.0 * (base_l1.avg_time_s - base_l.avg_time_s) / base_l.avg_time_s;
    let result = Exp2Result {
        l,
        ftv_l_avg_time_ms: base_l.avg_time_s * 1e3,
        ftv_l1_avg_time_ms: base_l1.avg_time_s * 1e3,
        time_change_pct: time_change,
        index_l_bytes: index_l,
        index_l1_bytes: index_l1,
        space_ratio: index_l1 as f64 / index_l as f64,
        gc_time_speedup: gc_run.time_speedup,
        gc_test_speedup: gc_run.test_speedup,
        gc_memory_bytes: gc.memory_bytes(),
        gc_memory_vs_index_pct: 100.0 * gc.memory_bytes() as f64 / index_l as f64,
    };

    println!("=== Experiment II: Speedup versus Overhead ===");
    println!("dataset: {n_graphs} molecule-like graphs; {n_queries} Zipf queries\n");
    print_table(
        &["configuration", "avg time/query", "index/cache memory", "vs FTV(L)"],
        &[
            vec![
                format!("FTV(L={l})"),
                format!("{:.3} ms", result.ftv_l_avg_time_ms),
                format!("{} KiB", index_l / 1024),
                "1.00x time, 1.00x space".to_string(),
            ],
            vec![
                format!("FTV(L={})", l + 1),
                format!("{:.3} ms", result.ftv_l1_avg_time_ms),
                format!("{} KiB", index_l1 / 1024),
                format!("{:+.1}% time, {:.2}x space", result.time_change_pct, result.space_ratio),
            ],
            vec![
                format!("FTV-tree(T={l})"),
                format!("{:.3} ms", base_tree.avg_time_s * 1e3),
                format!("{} KiB", index_tree / 1024),
                format!(
                    "{:+.1}% time, {:.2}x space",
                    100.0 * (base_tree.avg_time_s - base_l.avg_time_s) / base_l.avg_time_s,
                    index_tree as f64 / index_l as f64
                ),
            ],
            vec![
                format!("GC over FTV(L={l})"),
                format!("{:.3} ms", base_l.avg_time_s * 1e3 / result.gc_time_speedup),
                format!(
                    "{} KiB cache ({:.1}% of index)",
                    result.gc_memory_bytes / 1024,
                    result.gc_memory_vs_index_pct
                ),
                format!(
                    "{:.2}x time speedup, {:.2}x test speedup",
                    result.gc_time_speedup, result.gc_test_speedup
                ),
            ],
        ],
    );
    println!(
        "\npaper's shape: L+1 gives ~-10% time at ~2x space; GC gives large speedups at ~1% space."
    );
    println!(
        "measured     : L+1 gives {:+.1}% time at {:.2}x space; GC gives {:.2}x at {:.1}% space.",
        result.time_change_pct,
        result.space_ratio,
        result.gc_time_speedup,
        result.gc_memory_vs_index_pct
    );
    match write_artifact("exp2_speedup_overhead", &result) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
}
