//! Experiment XII: core-aware scaling of the sharded front-end plus
//! dispatched-vs-scalar kernel speedups.
//!
//! Two measurements in one artifact:
//!
//! 1. **Kernel ratios** — the runtime-dispatched bitset/merge kernels
//!    (`gc_graph::simd`, selected once per process from CPU features)
//!    against the always-compiled portable-scalar reference, per kernel.
//!    These are core-count-independent: they show what the dispatch buys
//!    on this machine even when `available_parallelism` is 1.
//! 2. **Core scaling** — `SharedGraphCache` throughput over a zipf
//!    workload swept across shard counts and client threads (with the
//!    batched per-shard probe fan-out engaged via `threads = clients`),
//!    against the sequential `GraphCache` baseline. Every shared-mode
//!    answer is cross-checked bit-for-bit against the sequential replay;
//!    any divergence aborts with a nonzero exit.
//!
//! Writes `bench_results/exp12_core_scaling.json` and, as the perf
//! trajectory artifact, `BENCH_scaling.json` at the working directory
//! root. Scaling is bounded by physical cores — a 1-core container shows
//! flat speedup curves by construction (the artifact records
//! `available_parallelism` so readers can tell); the kernel ratios remain
//! meaningful on any core count.

use gc_bench::{print_table, write_artifact};
use gc_core::{CacheConfig, GraphCache, PolicyKind, SharedGraphCache};
use gc_graph::simd;
use gc_method::{Dataset, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct KernelPoint {
    kernel: String,
    scalar_ns_per_call: f64,
    dispatched_ns_per_call: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ScalingPoint {
    shards: usize,
    clients: usize,
    queries: usize,
    elapsed_s: f64,
    throughput_qps: f64,
    speedup_vs_sequential: f64,
    hit_ratio: f64,
}

#[derive(Serialize)]
struct Exp12Artifact {
    available_parallelism: usize,
    kernel_dispatch: &'static str,
    dataset_graphs: usize,
    n_queries: usize,
    zipf_skew: f64,
    policy: String,
    kernels: Vec<KernelPoint>,
    scaling: Vec<ScalingPoint>,
}

/// Deterministic pseudo-random words (splitmix64) — no clock, no rand
/// state shared with the workload generator.
fn fill_words(seed: u64, out: &mut [u64]) {
    let mut s = seed;
    for w in out.iter_mut() {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *w = z ^ (z >> 31);
    }
}

/// Nanoseconds per call of `f`, median of 5 timed batches after a warmup.
fn bench_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps / 10 + 1 {
        f();
    }
    let mut samples = [0.0f64; 5];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        *s = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[2]
}

fn kernel_ratios(reps: usize) -> Vec<KernelPoint> {
    const WORDS: usize = 4096;
    let mut a = vec![0u64; WORDS];
    let mut b = vec![0u64; WORDS];
    fill_words(7, &mut a);
    fill_words(11, &mut b);

    // Posting-style inputs: a dense-ish sorted candidate set and a sorted
    // `(id, count)` list, the shapes the trie/tree/merge hot loops see.
    let cur: Vec<u32> = (0..20_000u32).step_by(3).collect();
    let list: Vec<(u32, u32)> = (0..30_000u32).step_by(2).map(|id| (id, 1 + id % 3)).collect();
    let mut blocks = vec![0u64; 30_000usize.div_ceil(64)];
    let postings = &list;

    let mut points = Vec::new();
    let mut push = |kernel: &str, scalar_ns: f64, dispatched_ns: f64| {
        points.push(KernelPoint {
            kernel: kernel.to_string(),
            scalar_ns_per_call: scalar_ns,
            dispatched_ns_per_call: dispatched_ns,
            speedup: scalar_ns / dispatched_ns.max(1e-9),
        });
    };

    push(
        "popcount_words",
        bench_ns(reps, || {
            black_box(simd::scalar::popcount_words(black_box(&a)));
        }),
        bench_ns(reps, || {
            black_box(simd::popcount_words(black_box(&a)));
        }),
    );
    push(
        "and_popcount_words",
        bench_ns(reps, || {
            black_box(simd::scalar::and_popcount_words(black_box(&a), black_box(&b)));
        }),
        bench_ns(reps, || {
            black_box(simd::and_popcount_words(black_box(&a), black_box(&b)));
        }),
    );
    push(
        "or_words",
        bench_ns(reps, || {
            simd::scalar::or_words(black_box(&mut a), black_box(&b));
        }),
        bench_ns(reps, || {
            simd::or_words(black_box(&mut a), black_box(&b));
        }),
    );
    push(
        "intersect_postings",
        bench_ns(reps, || {
            fill_words(13, &mut blocks);
            simd::scalar::intersect_postings(black_box(&mut blocks), black_box(postings), 2);
        }),
        bench_ns(reps, || {
            fill_words(13, &mut blocks);
            simd::intersect_postings(black_box(&mut blocks), black_box(postings), 2);
        }),
    );
    let mut out = Vec::with_capacity(cur.len());
    push(
        "intersect_pairs",
        bench_ns(reps, || {
            out.clear();
            simd::scalar::intersect_pairs(black_box(&cur), black_box(&list), 1, &mut out);
            black_box(out.len());
        }),
        bench_ns(reps, || {
            out.clear();
            simd::intersect_pairs(black_box(&cur), black_box(&list), 1, &mut out);
            black_box(out.len());
        }),
    );
    // Skewed shape (list ≫ candidate run): the band where the AVX2 pair
    // block-scan engages (see `gc_graph::simd::pair_scan_wins`); the dense
    // shape above stays on the linear merge by design, so its ratio is ~1.
    let cur_skew: Vec<u32> = (0..64u32).map(|i| i * 256).collect();
    push(
        "intersect_pairs_skewed",
        bench_ns(reps, || {
            out.clear();
            simd::scalar::intersect_pairs(black_box(&cur_skew), black_box(&list), 1, &mut out);
            black_box(out.len());
        }),
        bench_ns(reps, || {
            out.clear();
            simd::intersect_pairs(black_box(&cur_skew), black_box(&list), 1, &mut out);
            black_box(out.len());
        }),
    );
    points
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dispatch = simd::kernel_name();

    // --- kernel ratios ------------------------------------------------------
    let reps = if smoke { 200 } else { 2000 };
    let kernels = kernel_ratios(reps);
    println!(
        "=== Experiment XII: core scaling + kernel dispatch ({cores} core(s), \
         dispatch: {dispatch}) ===\n"
    );
    let kernel_rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|k| {
            vec![
                k.kernel.clone(),
                format!("{:.0} ns", k.scalar_ns_per_call),
                format!("{:.0} ns", k.dispatched_ns_per_call),
                format!("{:.2}x", k.speedup),
            ]
        })
        .collect();
    print_table(&["kernel", "scalar", "dispatched", "speedup"], &kernel_rows);
    let best = kernels.iter().map(|k| k.speedup).fold(0.0f64, f64::max);
    println!("\nbest kernel speedup: {best:.2}x (dispatch tier: {dispatch})\n");

    // --- core-scaling sweep -------------------------------------------------
    let n_graphs = if smoke { 50 } else { 150 };
    let n_queries = if smoke { 300 } else { 1500 };
    let skew = 1.1;
    let dataset = Arc::new(Dataset::new(molecule_dataset(n_graphs, 4242)));
    let spec = WorkloadSpec {
        n_queries,
        pool_size: 120,
        kind: WorkloadKind::Zipf { skew },
        min_edges: 4,
        max_edges: 10,
        seed: 23,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    let mut seq = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { capacity: 64, window_size: 8, ..CacheConfig::default() },
    )
    .expect("valid config");
    let t0 = Instant::now();
    let expected: Vec<gc_graph::BitSet> =
        workload.queries.iter().map(|wq| seq.query(&wq.graph, wq.kind).answer).collect();
    let seq_elapsed = t0.elapsed().as_secs_f64();
    let seq_qps = n_queries as f64 / seq_elapsed.max(1e-9);

    let shard_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let client_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut scaling = Vec::new();
    let mut rows = vec![vec![
        "seq".to_string(),
        "1".to_string(),
        format!("{seq_elapsed:.3} s"),
        format!("{seq_qps:.0} q/s"),
        "1.00x".to_string(),
    ]];
    for &shards in shard_counts {
        for &clients in client_counts {
            let config = CacheConfig {
                capacity: 64,
                window_size: 8,
                shards,
                // threads > 1 engages both the verify pool and the batched
                // per-shard probe fan-out.
                threads: clients.max(2).min(cores.max(2)),
                ..CacheConfig::default()
            };
            let gc = SharedGraphCache::with_policy(
                dataset.clone(),
                Box::new(SiMethod),
                PolicyKind::Hd,
                config,
            )
            .expect("valid config");
            let t0 = Instant::now();
            let mismatches: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|t| {
                        let gc = &gc;
                        let workload = &workload;
                        let expected = &expected;
                        scope.spawn(move || {
                            let mut bad = 0usize;
                            for (i, wq) in workload.queries.iter().enumerate() {
                                if i % clients != t {
                                    continue;
                                }
                                if gc.query(&wq.graph, wq.kind).answer != expected[i] {
                                    bad += 1;
                                }
                            }
                            bad
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
            });
            let elapsed = t0.elapsed().as_secs_f64();
            // Divergence is a correctness failure: exit nonzero.
            assert_eq!(
                mismatches, 0,
                "shared answers diverged from sequential replay (shards {shards}, clients {clients})"
            );
            let qps = n_queries as f64 / elapsed.max(1e-9);
            scaling.push(ScalingPoint {
                shards,
                clients,
                queries: n_queries,
                elapsed_s: elapsed,
                throughput_qps: qps,
                speedup_vs_sequential: qps / seq_qps,
                hit_ratio: gc.stats().hit_ratio(),
            });
            rows.push(vec![
                format!("shards={shards}"),
                clients.to_string(),
                format!("{elapsed:.3} s"),
                format!("{qps:.0} q/s"),
                format!("{:.2}x", qps / seq_qps),
            ]);
        }
    }

    print_table(&["mode", "clients", "wall time", "throughput", "vs sequential"], &rows);
    println!("\nall shared-mode answers verified bit-identical to the sequential replay");
    if cores < 8 {
        println!(
            "note: only {cores} core(s) available — the speedup curve is bounded by \
             hardware, not the cache (see artifact's available_parallelism)"
        );
    }

    let artifact = Exp12Artifact {
        available_parallelism: cores,
        kernel_dispatch: dispatch,
        dataset_graphs: n_graphs,
        n_queries,
        zipf_skew: skew,
        policy: "HD".into(),
        kernels,
        scaling,
    };
    match write_artifact("exp12_core_scaling", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => match std::fs::write("BENCH_scaling.json", json) {
            Ok(()) => println!("baseline: BENCH_scaling.json"),
            Err(e) => eprintln!("baseline write failed: {e}"),
        },
        Err(e) => eprintln!("baseline serialization failed: {e}"),
    }
}
