//! Experiment XV: dynamic datasets and the generation-versioned answer
//! memo.
//!
//! The paper's cache assumes a static dataset; this harness gates the
//! live-mutation extension end to end:
//!
//! 1. **Interleaved stream**: inserts, removes, and queries interleave
//!    against one cache (filter-then-verify method + mutation overlay).
//!    **Every** answer is cross-checked against Method M alone on the
//!    dataset *as mutated so far* — in-place answer repair must be
//!    indistinguishable from a cold rebuild at every step. Memo hits are
//!    verified to do **zero** probe/verify/sub-iso work.
//! 2. **Memo ablation**: the same repeat-heavy stream with the memo
//!    enabled vs disabled (`memo_capacity: 0`), measuring avg tests and
//!    wall time — the memo may only ever save work.
//! 3. **Warm restart with deltas**: a session snapshots, then mutates
//!    (deltas land only in the journal), then "crashes". Restoring from
//!    the *pristine* base dataset must replay every delta
//!    (fingerprint-validated), repair restored entries to the final
//!    universe, and answer exactly.
//!
//! Any violation exits nonzero. Writes
//! `bench_results/exp15_dynamic_dataset.json`, and `BENCH_memo.json` on
//! full runs. `--smoke` shrinks everything for CI.

use gc_bench::{print_table, write_artifact};
use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind};
use gc_method::{execute_base, Dataset, Engine, FtvMethod, QueryKind, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Exp15Artifact {
    smoke: bool,
    dataset_size: usize,
    stream_steps: usize,
    inserts_applied: u64,
    removes_applied: u64,
    final_generation: u64,
    final_live_graphs: u64,
    /// Stream answers cross-checked against Method M on the live dataset.
    answers_cross_checked: usize,
    /// Memo hits observed in the stream, each verified zero-work.
    stream_memo_hits: u64,
    /// Ablation: repeat-heavy stream with the memo on vs off.
    ablation_queries: usize,
    memo_hits: u64,
    memo_avg_tests: f64,
    nomemo_avg_tests: f64,
    /// `nomemo_avg_tests / memo_avg_tests`.
    memo_test_speedup: f64,
    memo_wall_s: f64,
    nomemo_wall_s: f64,
    /// Warm restart: dataset deltas replayed from the journal.
    journal_deltas_replayed: usize,
    entries_restored: usize,
    restore_s: f64,
    restart_answers_checked: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("exp15 FAILED: {msg}");
    std::process::exit(1);
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_exp15_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A query extracted from a random live graph of the current dataset.
fn live_query(ds: &Dataset, rng: &mut StdRng) -> gc_graph::Graph {
    let live: Vec<u32> = ds.live_mask().iter().map(|g| g as u32).collect();
    loop {
        let src = live[rng.gen_range(0..live.len())];
        let size = rng.gen_range(4..9);
        if let Some(q) = gc_workload::extract_query(ds.graph(src), size, rng) {
            return q;
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds_size = if smoke { 30 } else { 110 };
    let stream_steps = if smoke { 120 } else { 600 };
    let ablation_queries = if smoke { 150 } else { 800 };

    // ---- phase 1: interleaved mutation stream, every answer checked ------
    let base = Arc::new(Dataset::new(molecule_dataset(ds_size, 1500)));
    let cfg = CacheConfig { capacity: 24, window_size: 3, ..CacheConfig::default() };
    let mut gc = GraphCache::with_policy(
        base.clone(),
        Box::new(FtvMethod::build(&base, 2)),
        PolicyKind::Hd,
        cfg.clone(),
    )
    .expect("valid config");

    let mut rng = StdRng::seed_from_u64(15);
    let mut pool = molecule_dataset(stream_steps / 4, 9100).into_iter();
    let (mut inserts_applied, mut removes_applied) = (0u64, 0u64);
    let mut answers_cross_checked = 0usize;
    let mut stream_memo_hits = 0u64;
    let mut asked: Vec<(gc_graph::Graph, QueryKind)> = Vec::new();
    for step in 0..stream_steps {
        match rng.gen_range(0..8) {
            0 => {
                let gid = gc.insert_graph(pool.next().expect("insert pool sized for the stream"));
                if !gc.dataset().live_mask().contains(gid as usize) {
                    fail("inserted graph is not live");
                }
                inserts_applied += 1;
            }
            1 if gc.dataset().live_count() > ds_size / 2 => {
                let live: Vec<u32> = gc.dataset().live_mask().iter().map(|g| g as u32).collect();
                let victim = live[rng.gen_range(0..live.len())];
                if !gc.remove_graph(victim) {
                    fail("remove of a live graph reported no-op");
                }
                removes_applied += 1;
            }
            k => {
                // A third of queries re-ask an earlier one, so exact-match
                // and memo paths are exercised under mutation, not just the
                // full pipeline.
                let (q, kind) = if !asked.is_empty() && k % 3 == 2 {
                    asked[rng.gen_range(0..asked.len())].clone()
                } else {
                    let kind = if k % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph };
                    let q = live_query(gc.dataset(), &mut rng);
                    asked.push((q.clone(), kind));
                    (q, kind)
                };
                let r = gc.query(&q, kind);
                let want = execute_base(gc.dataset(), &SiMethod, Engine::Vf2, &q, kind);
                if r.answer != want.answer {
                    fail(&format!(
                        "step {step}: answer diverged from Method M on the mutated dataset \
                         (generation {})",
                        gc.dataset().generation()
                    ));
                }
                answers_cross_checked += 1;
                if r.memo_hit {
                    if r.probe_tests != 0 || r.sub_iso_tests != 0 || r.verify_steps != 0 {
                        fail(&format!(
                            "step {step}: memo hit did work ({} probes, {} tests, {} steps)",
                            r.probe_tests, r.sub_iso_tests, r.verify_steps
                        ));
                    }
                    stream_memo_hits += 1;
                }
            }
        }
    }
    if inserts_applied == 0 || removes_applied == 0 {
        fail("stream must exercise both inserts and removes");
    }
    if stream_memo_hits == 0 {
        fail("stream produced no memo hits — the re-ask mix is broken");
    }
    let final_generation = gc.dataset().generation();
    let final_live_graphs = gc.dataset().live_count() as u64;

    // ---- phase 2: memo ablation on a repeat-heavy stream -----------------
    // Small capacity forces evictions, so repeats outlive their cache
    // entries — exactly the window where the memo pays.
    let spec = WorkloadSpec {
        n_queries: ablation_queries,
        pool_size: 40,
        kind: WorkloadKind::Zipf { skew: 1.2 },
        seed: 23,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(base.graphs(), &spec);
    let run = |memo_capacity: usize| {
        let mut gc = GraphCache::with_policy(
            base.clone(),
            Box::new(FtvMethod::build(&base, 2)),
            PolicyKind::Lru,
            CacheConfig { capacity: 8, window_size: 2, memo_capacity, ..CacheConfig::default() },
        )
        .expect("valid config");
        let t0 = Instant::now();
        let mut tests = 0u64;
        for wq in &workload.queries {
            let r = gc.query(&wq.graph, wq.kind);
            if r.memo_hit && (r.probe_tests != 0 || r.sub_iso_tests != 0 || r.verify_steps != 0) {
                fail("ablation memo hit performed probe/verify work");
            }
            tests += r.sub_iso_tests + r.probe_tests;
        }
        (tests as f64 / workload.len() as f64, t0.elapsed().as_secs_f64(), gc.stats().memo_hits)
    };
    let (memo_avg_tests, memo_wall_s, memo_hits) = run(cfg.memo_capacity);
    let (nomemo_avg_tests, nomemo_wall_s, no_hits) = run(0);
    if no_hits != 0 {
        fail("memo_capacity 0 must disable the memo");
    }
    if memo_hits == 0 {
        fail("repeat-heavy ablation stream produced no memo hits");
    }
    if memo_avg_tests > nomemo_avg_tests + 1e-9 {
        fail(&format!(
            "memo increased work: {memo_avg_tests:.2} vs {nomemo_avg_tests:.2} avg tests"
        ));
    }

    // ---- phase 3: warm restart replays dataset deltas --------------------
    let dir = fresh_dir("store");
    let store = Arc::new(CacheStore::open(&dir).expect("open store"));
    let (mut a, first) = GraphCache::restore_from(
        base.clone(),
        Box::new(FtvMethod::build(&base, 2)),
        PolicyKind::Hd.make(),
        cfg.clone(),
        Arc::clone(&store),
    )
    .expect("restore_from");
    if first.warm {
        fail("fresh directory restored warm");
    }
    let mut rng = StdRng::seed_from_u64(77);
    let probes: Vec<(gc_graph::Graph, QueryKind)> = (0..8)
        .map(|i| {
            (
                live_query(&base, &mut rng),
                if i % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph },
            )
        })
        .collect();
    for (q, kind) in &probes {
        a.query(q, *kind);
    }
    a.snapshot_now().expect("snapshot");
    // Mutations after the snapshot: they exist only as journal deltas.
    let n_mutations = if smoke { 6 } else { 20 };
    for (i, g) in molecule_dataset(n_mutations, 555).into_iter().enumerate() {
        let gid = a.insert_graph(g);
        if i % 3 == 2 && !a.remove_graph(gid) {
            fail("post-snapshot remove reported no-op");
        }
    }
    let mutations_journaled = a.dataset().generation();
    let final_fp = a.dataset().content_fingerprint();
    let want_answers: Vec<_> = probes
        .iter()
        .map(|(q, kind)| execute_base(a.dataset(), &SiMethod, Engine::Vf2, q, *kind).answer)
        .collect();
    a.attached_store().expect("store attached").sync().expect("sync journal");
    drop(a); // crash: deltas never made it into a snapshot

    let t = Instant::now();
    let store = Arc::new(CacheStore::open(&dir).expect("reopen store"));
    let (mut b, report) = GraphCache::restore_from(
        base.clone(),
        Box::new(FtvMethod::build(&base, 2)),
        PolicyKind::Hd.make(),
        cfg,
        store,
    )
    .expect("restore_from");
    let restore_s = t.elapsed().as_secs_f64();
    if !report.warm {
        fail(&format!("delta-bearing store restored cold: {:?}", report.cold_reason));
    }
    if report.journal_deltas as u64 != mutations_journaled {
        fail(&format!(
            "journal replayed {} deltas, expected {mutations_journaled}",
            report.journal_deltas
        ));
    }
    if b.dataset().generation() != mutations_journaled
        || b.dataset().content_fingerprint() != final_fp
    {
        fail("restored dataset does not match the crashed session's final dataset");
    }
    let mut restart_answers_checked = 0usize;
    for ((q, kind), want) in probes.iter().zip(&want_answers) {
        let r = b.query(q, *kind);
        if &r.answer != want {
            fail("restored cache answer diverged after delta replay");
        }
        restart_answers_checked += 1;
    }
    let _ = std::fs::remove_dir_all(&dir);

    // ---- report ----------------------------------------------------------
    println!(
        "=== Experiment XV: dynamic datasets + answer memo ({ds_size} graphs, \
         {stream_steps}-step mutation stream, {ablation_queries}-query ablation) ===\n"
    );
    let rows = vec![
        vec![
            "mutation stream".to_owned(),
            format!("{inserts_applied} inserts, {removes_applied} removes"),
            format!("generation {final_generation}, {final_live_graphs} live"),
            format!("{answers_cross_checked} answers checked, {stream_memo_hits} memo hits"),
        ],
        vec![
            "memo ablation (avg tests)".to_owned(),
            format!("{memo_avg_tests:.1} with memo"),
            format!("{nomemo_avg_tests:.1} without"),
            format!("{:.2}x, {memo_hits} hits", nomemo_avg_tests / memo_avg_tests.max(1e-12)),
        ],
        vec![
            "memo ablation (wall)".to_owned(),
            format!("{:.1} ms", memo_wall_s * 1e3),
            format!("{:.1} ms", nomemo_wall_s * 1e3),
            format!("{:.2}x", nomemo_wall_s / memo_wall_s.max(1e-12)),
        ],
        vec![
            "warm restart".to_owned(),
            format!("{} deltas replayed", report.journal_deltas),
            format!("{} entries, {:.1} ms", report.entries_restored, restore_s * 1e3),
            format!("{restart_answers_checked} answers checked"),
        ],
    ];
    print_table(&["phase", "", "", "verification"], &rows);

    let artifact = Exp15Artifact {
        smoke,
        dataset_size: ds_size,
        stream_steps,
        inserts_applied,
        removes_applied,
        final_generation,
        final_live_graphs,
        answers_cross_checked,
        stream_memo_hits,
        ablation_queries,
        memo_hits,
        memo_avg_tests,
        nomemo_avg_tests,
        memo_test_speedup: nomemo_avg_tests / memo_avg_tests.max(1e-12),
        memo_wall_s,
        nomemo_wall_s,
        journal_deltas_replayed: report.journal_deltas,
        entries_restored: report.entries_restored,
        restore_s,
        restart_answers_checked,
    };
    match write_artifact("exp15_dynamic_dataset", &artifact) {
        Ok(p) => println!("artifact: {}", p.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if !smoke {
        match serde_json::to_string_pretty(&artifact) {
            Ok(json) => match std::fs::write("BENCH_memo.json", json) {
                Ok(()) => println!("baseline: BENCH_memo.json"),
                Err(e) => eprintln!("baseline write failed: {e}"),
            },
            Err(e) => eprintln!("baseline serialization failed: {e}"),
        }
    }
}
