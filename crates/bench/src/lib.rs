//! # gc-bench — experiment harness for the GC reproduction
//!
//! One binary per table/figure of the paper (see DESIGN.md §3):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `exp1_policies` | §3.1.I policy competition (+ Fig. 2(c)) |
//! | `exp2_speedup_overhead` | §3.1.II feature-size vs cache trade-off |
//! | `exp3_query_journey` | Fig. 3 pipeline anatomy |
//! | `exp4_replacement_view` | Fig. 2(c) eviction views |
//! | `exp5_scalability` | §1/§2 speedup scaling sweeps |
//! | `exp7_concurrency` | concurrent-client throughput of `SharedGraphCache` |
//! | `exp8_verify_hotpath` | verification hot-path throughput (answer-checked) |
//! | `exp9_filter_frontend` | filter front-end throughput (answer-checked) |
//! | `exp12_core_scaling` | SIMD kernel dispatch ratios + shard/client scaling (answer-checked) |
//!
//! Criterion microbenches live in `benches/`. This library holds the shared
//! measurement plumbing so every experiment reports the paper's metrics the
//! same way: *speedup = avg(Method M) / avg(GC over Method M)* for both
//! sub-iso-test counts and query time (paper §2, Demonstrator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gc_core::{CacheConfig, GlobalStats, GraphCache, PolicyKind};
use gc_method::{execute_base, Dataset, Method, QueryKind};
use gc_workload::Workload;
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Aggregate result of running a workload with Method M alone.
#[derive(Debug, Clone, Serialize)]
pub struct BaseAggregate {
    /// Average sub-iso tests per query.
    pub avg_tests: f64,
    /// Average wall-clock per query (seconds).
    pub avg_time_s: f64,
    /// Total queries.
    pub queries: usize,
}

/// Aggregate result of running a workload through GraphCache.
#[derive(Debug, Clone, Serialize)]
pub struct CachedAggregate {
    /// Policy used.
    pub policy: String,
    /// Average sub-iso tests per query (probes charged).
    pub avg_tests: f64,
    /// Average wall-clock per query (seconds).
    pub avg_time_s: f64,
    /// Fraction of queries with any hit.
    pub hit_ratio: f64,
    /// Entries evicted over the run.
    pub evicted: u64,
    /// Speedup in tests vs the base aggregate.
    pub test_speedup: f64,
    /// Speedup in time vs the base aggregate.
    pub time_speedup: f64,
    /// Final cache memory (bytes).
    pub cache_bytes: usize,
}

/// Run the workload through Method M without a cache.
pub fn run_base(dataset: &Arc<Dataset>, method: &dyn Method, workload: &Workload) -> BaseAggregate {
    let mut tests = 0u64;
    let mut time = Duration::ZERO;
    for wq in &workload.queries {
        let r = execute_base(dataset, method, gc_method::Engine::Vf2, &wq.graph, wq.kind);
        tests += r.sub_iso_tests as u64;
        time += r.elapsed;
    }
    let n = workload.len().max(1) as f64;
    BaseAggregate {
        avg_tests: tests as f64 / n,
        avg_time_s: time.as_secs_f64() / n,
        queries: workload.len(),
    }
}

/// Run the workload through GraphCache with the given policy.
pub fn run_cached(
    dataset: &Arc<Dataset>,
    method: Box<dyn Method>,
    policy: PolicyKind,
    config: &CacheConfig,
    workload: &Workload,
    base: &BaseAggregate,
) -> CachedAggregate {
    let mut gc = GraphCache::with_policy(dataset.clone(), method, policy, config.clone())
        .expect("valid config");
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    let stats = gc.stats();
    aggregate(&stats, gc.memory_bytes(), policy, base)
}

fn aggregate(
    stats: &GlobalStats,
    cache_bytes: usize,
    policy: PolicyKind,
    base: &BaseAggregate,
) -> CachedAggregate {
    let avg_tests = stats.avg_tests_per_query();
    let avg_time_s = stats.avg_time_per_query().as_secs_f64();
    CachedAggregate {
        policy: policy.to_string(),
        avg_tests,
        avg_time_s,
        hit_ratio: stats.hit_ratio(),
        evicted: stats.evicted,
        test_speedup: if avg_tests > 0.0 { base.avg_tests / avg_tests } else { f64::INFINITY },
        time_speedup: if avg_time_s > 0.0 { base.avg_time_s / avg_time_s } else { f64::INFINITY },
        cache_bytes,
    }
}

/// Standard query kinds mix helper: all-subgraph workloads by default.
pub const SUBGRAPH_ONLY: QueryKind = QueryKind::Subgraph;

/// Write a JSON artefact under `bench_results/` (created on demand); the
/// experiments record their measurements so EXPERIMENTS.md is regenerable.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("bench_results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// Simple fixed-width table printer shared by the experiment binaries.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let prow = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{c:<w$}  ", w = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    prow(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
    for row in rows {
        prow(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_method::SiMethod;
    use gc_workload::{molecule_dataset, WorkloadKind, WorkloadSpec};

    #[test]
    fn base_and_cached_aggregates() {
        let dataset = Arc::new(Dataset::new(molecule_dataset(10, 3)));
        let spec = WorkloadSpec {
            n_queries: 20,
            pool_size: 5,
            kind: WorkloadKind::Zipf { skew: 1.0 },
            seed: 1,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(dataset.graphs(), &spec);
        let base = run_base(&dataset, &SiMethod, &w);
        assert_eq!(base.queries, 20);
        assert!(base.avg_tests > 0.0);
        let cfg = CacheConfig { capacity: 8, window_size: 2, ..CacheConfig::default() };
        let cached = run_cached(&dataset, Box::new(SiMethod), PolicyKind::Hd, &cfg, &w, &base);
        assert!(cached.test_speedup > 1.0, "repetition must speed things up");
        assert!(cached.hit_ratio > 0.0);
    }
}
