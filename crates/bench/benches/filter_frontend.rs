//! Filter front-end microbenches: streaming/arena tier vs the reference
//! (materialized/HashMap) tier, per stage — extraction, FTV trie filter,
//! containment-index probes. The end-to-end per-query comparison lives in
//! `exp9_filter_frontend` (answer-cross-checked); these isolate each stage.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_graph::BitSet;
use gc_index::reference::{feature_vec_materialized, RefPathTrie, RefQueryIndex};
use gc_index::{CandScratch, ExtractScratch, FeatureConfig, PathTrie, QueryIndex, TrieScratch};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_filter_frontend(c: &mut Criterion) {
    let cfg = FeatureConfig::with_max_len(3);
    let dataset = molecule_dataset(100, 1234);
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<_> =
        (0..20).map(|i| extract_query(&dataset[i % dataset.len()], 8, &mut rng).unwrap()).collect();

    let trie = PathTrie::build(&dataset, cfg);
    let ref_trie = RefPathTrie::build(&dataset, cfg);
    let mut qi = QueryIndex::new(cfg);
    let mut ref_qi = RefQueryIndex::new(cfg);
    for i in 0..32u32 {
        let cached =
            extract_query(&dataset[(i as usize * 3) % dataset.len()], 6, &mut rng).unwrap();
        qi.insert(i, &cached);
        ref_qi.insert(i, &cached);
    }
    let feature_vecs: Vec<_> = queries.iter().map(|q| qi.features_of(q)).collect();

    let mut group = c.benchmark_group("filter_frontend");
    group.sample_size(15).measurement_time(Duration::from_secs(2));

    group.bench_function("extract/materialized", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += feature_vec_materialized(std::hint::black_box(q), &cfg).len();
            }
            total
        })
    });
    group.bench_function("extract/streaming", |b| {
        let mut scratch = ExtractScratch::new();
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += scratch.extract(std::hint::black_box(q), &cfg).len();
            }
            total
        })
    });

    group.bench_function("trie/nodes", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += ref_trie.candidates(std::hint::black_box(q)).count();
                total += ref_trie.super_candidates(std::hint::black_box(q)).count();
            }
            total
        })
    });
    group.bench_function("trie/arena", |b| {
        let mut scratch = TrieScratch::new();
        let mut out = BitSet::new(trie.dataset_size());
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                trie.candidates_into(std::hint::black_box(q), &mut scratch, &mut out);
                total += out.count();
                trie.super_candidates_into(std::hint::black_box(q), &mut scratch, &mut out);
                total += out.count();
            }
            total
        })
    });

    group.bench_function("query_index/hashmap", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for qf in &feature_vecs {
                total += ref_qi.sub_case_candidates(std::hint::black_box(qf)).len();
                total += ref_qi.super_case_candidates(std::hint::black_box(qf)).len();
            }
            total
        })
    });
    group.bench_function("query_index/flat", |b| {
        let mut scratch = CandScratch::new();
        b.iter(|| {
            let mut total = 0usize;
            for qf in &feature_vecs {
                qi.sub_case_candidates_into(std::hint::black_box(qf).as_features(), &mut scratch);
                total += scratch.candidates().len();
                qi.super_case_candidates_into(qf.as_features(), &mut scratch);
                total += scratch.candidates().len();
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_filter_frontend);
criterion_main!(benches);
