//! Posting-intersection microbenches: two-pointer vs galloping
//! (exponential-search) merges on the skew axis — the per-step choice the
//! adaptive k-way sub-case merge makes via `IndexTuning::gallop_cutoff`.
//! The end-to-end churn comparison lives in `exp10_index_churn`
//! (answer-cross-checked); these isolate the merge kernels on controlled
//! length ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_index::merge::{intersect_gallop, intersect_two_pointer};
use std::time::Duration;

/// Sorted id run of `len` ids with stride `stride` from `offset`.
fn ids(len: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..len as u32).map(|i| offset + i * stride).collect()
}

/// Posting list over the same id space, every id with count 2.
fn postings(len: usize, stride: u32, offset: u32) -> Vec<(u32, u32)> {
    (0..len as u32).map(|i| (offset + i * stride, 2)).collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    // (short, long, name): the skew sweep. At 1:1 two-pointer should win;
    // at 1:10_000 galloping must.
    let cases = [
        (4_096usize, 4_096usize, "skew_1to1"),
        (512, 16_384, "skew_1to32"),
        (16, 65_536, "skew_1to4096"),
        (1, 65_536, "skew_1to64k"),
    ];
    for (short_len, long_len, name) in cases {
        // The short run spans the long list's full id range (the realistic
        // shape: a shrunken running intersection against a long posting
        // list), so two-pointer must traverse the whole long side.
        let stride = ((2 * long_len) / short_len).max(2) as u32;
        let cur = ids(short_len, stride, 0);
        let list = postings(long_len, 2, 0);
        let mut out = Vec::with_capacity(short_len);
        group.bench_function(format!("two_pointer/{name}"), |b| {
            b.iter(|| {
                intersect_two_pointer(
                    std::hint::black_box(&cur),
                    std::hint::black_box(&list),
                    2,
                    &mut out,
                );
                out.len()
            })
        });
        group.bench_function(format!("gallop/{name}"), |b| {
            b.iter(|| {
                intersect_gallop(
                    std::hint::black_box(&cur),
                    std::hint::black_box(&list),
                    2,
                    &mut out,
                );
                out.len()
            })
        });
    }

    // Adversarial shapes from the cross-check tests: empty overlap at the
    // far end, and full overlap.
    let cur = ids(64, 1, 1_000_000);
    let list = postings(65_536, 2, 0);
    let mut out = Vec::with_capacity(64);
    group.bench_function("gallop/disjoint_tail", |b| {
        b.iter(|| {
            intersect_gallop(std::hint::black_box(&cur), std::hint::black_box(&list), 2, &mut out);
            out.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
