//! Concurrency microbenches: SharedGraphCache hot paths under parallel
//! clients.
//!
//! * `shared_exact_hit` — the read-then-write exact fast path, one client;
//! * `shared_miss_probe` — full pipeline misses against a warm cache;
//! * `contended_clients/N` — a fixed batch of mixed queries split over N
//!   client threads (thread spawn included, so compare N against N — the
//!   interesting trend is how batch time changes with N as cores allow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::{CacheConfig, PolicyKind, SharedGraphCache};
use gc_method::{Dataset, FtvMethod, QueryKind};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn warmed_shared(dataset: &Arc<Dataset>, entries: usize, seed: u64) -> SharedGraphCache {
    let gc = SharedGraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, 2)),
        PolicyKind::Hd,
        CacheConfig { capacity: entries.max(1), window_size: 10, ..CacheConfig::default() },
    )
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut guard = 0;
    while gc.len() < entries && guard < entries * 20 {
        guard += 1;
        let src = dataset.graph((guard % dataset.len()) as u32);
        if let Some(q) = extract_query(src, 4 + guard % 8, &mut rng) {
            gc.query(&q, QueryKind::Subgraph);
        }
    }
    gc
}

fn bench_concurrent(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::new(molecule_dataset(100, 90210)));
    let mut group = c.benchmark_group("shared_graphcache");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    // Exact-hit fast path through the sharded front-end.
    let gc = warmed_shared(&dataset, 50, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let hot = extract_query(dataset.graph(5), 7, &mut rng).unwrap();
    gc.query(&hot, QueryKind::Subgraph); // ensure cached
    group.bench_function("shared_exact_hit", |b| {
        b.iter(|| gc.query(std::hint::black_box(&hot), QueryKind::Subgraph).answer.count())
    });

    // Miss path: all-shard probe + prune + verify.
    let mut rng = StdRng::seed_from_u64(1000);
    let fresh: Vec<_> = (0..10)
        .map(|i| extract_query(dataset.graph(90 + (i % 10)), 9, &mut rng).unwrap())
        .collect();
    group.bench_function("shared_miss_probe", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for q in &fresh {
                n += gc.query(std::hint::black_box(q), QueryKind::Subgraph).answer.count();
            }
            n
        })
    });

    // Contended: one fixed 64-query batch split over N clients.
    let mut rng = StdRng::seed_from_u64(3000);
    let batch: Vec<_> = (0..64)
        .map(|i| extract_query(dataset.graph((i * 7 % 100) as u32), 5 + i % 6, &mut rng).unwrap())
        .collect();
    for &clients in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("contended_clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..clients {
                            let gc = &gc;
                            let batch = &batch;
                            scope.spawn(move || {
                                let mut n = 0usize;
                                for q in batch.iter().skip(t).step_by(clients) {
                                    n += gc.query(q, QueryKind::Subgraph).answer.count();
                                }
                                n
                            });
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
