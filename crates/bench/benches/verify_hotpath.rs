//! Microbench: from-scratch `Engine::verify` vs the profiled
//! `Engine::verify_candidate` hot path (per-query profile + dataset
//! profiles + reusable scratch), for both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_method::{Dataset, Engine, QueryKind, QueryProfile, VfScratch};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_hotpath(c: &mut Criterion) {
    let dataset = Dataset::new(molecule_dataset(20, 909));
    let mut rng = StdRng::seed_from_u64(4);
    let queries: Vec<_> = (0..8)
        .map(|i| {
            extract_query(dataset.graph((i % dataset.len()) as u32), 8, &mut rng)
                .expect("molecule graphs have edges")
        })
        .collect();

    let mut group = c.benchmark_group("verify_hotpath");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for engine in [Engine::Vf2, Engine::Ullmann] {
        group.bench_with_input(BenchmarkId::new("from_scratch", engine), &engine, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    for gid in 0..dataset.len() as u32 {
                        let (ok, _) = engine.verify(q, dataset.graph(gid));
                        hits += usize::from(ok);
                    }
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("profiled", engine), &engine, |b, _| {
            b.iter(|| {
                let mut scratch = VfScratch::new();
                let mut hits = 0usize;
                for q in &queries {
                    let profile = QueryProfile::new(&dataset, q, QueryKind::Subgraph);
                    for gid in 0..dataset.len() as u32 {
                        let (ok, _) =
                            engine.verify_candidate(&dataset, &profile, q, gid, &mut scratch);
                        hits += usize::from(ok);
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
