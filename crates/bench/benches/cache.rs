//! GraphCache hot-path microbenches: exact-hit latency, miss-path latency,
//! and hit-probe cost as the cache grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::{CacheConfig, GraphCache, PolicyKind};
use gc_method::{Dataset, FtvMethod, QueryKind};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn warmed_cache(dataset: &Arc<Dataset>, entries: usize, seed: u64) -> GraphCache {
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, 2)),
        PolicyKind::Hd,
        CacheConfig { capacity: entries.max(1), window_size: 10, ..CacheConfig::default() },
    )
    .expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut guard = 0;
    while gc.len() < entries && guard < entries * 20 {
        guard += 1;
        let src = dataset.graph((guard % dataset.len()) as u32);
        if let Some(q) = extract_query(src, 4 + guard % 8, &mut rng) {
            gc.query(&q, QueryKind::Subgraph);
        }
    }
    gc
}

fn bench_cache(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::new(molecule_dataset(100, 31337)));
    let mut group = c.benchmark_group("graphcache");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    // Exact-hit fast path: resubmit a query the cache holds.
    let mut gc = warmed_cache(&dataset, 50, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let hot = extract_query(dataset.graph(5), 7, &mut rng).unwrap();
    gc.query(&hot, QueryKind::Subgraph); // ensure cached
    group.bench_function("exact_hit", |b| {
        b.iter(|| gc.query(std::hint::black_box(&hot), QueryKind::Subgraph).answer.count())
    });

    // Probe cost as cache size grows: query misses but must be checked
    // against all cached entries' feature vectors.
    for &entries in &[10usize, 50, 200] {
        let mut gc = warmed_cache(&dataset, entries, 3);
        let mut rng = StdRng::seed_from_u64(1000);
        let fresh: Vec<_> = (0..10)
            .map(|i| extract_query(dataset.graph(90 + (i % 10)), 9, &mut rng).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("miss_with_probe", entries), &entries, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for q in &fresh {
                    n += gc.query(std::hint::black_box(q), QueryKind::Subgraph).answer.count();
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
