//! Bitset/merge kernel microbenches: the runtime-dispatched word kernels
//! (`gc_graph::simd`) against the always-compiled portable-scalar
//! reference, on the word-array and posting-list shapes the trie/tree
//! candidate loops feed them. The answer-cross-checked end-to-end view
//! lives in `exp12_core_scaling`; these isolate the kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_graph::simd;
use std::time::Duration;

/// Deterministic pseudo-random words (splitmix64).
fn words(seed: u64, len: usize) -> Vec<u64> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_kernels");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    const WORDS: usize = 4096; // a 256k-graph dataset's bitset
    let a = words(7, WORDS);
    let b = words(11, WORDS);

    group.bench_function("popcount_words/scalar", |bch| {
        bch.iter(|| simd::scalar::popcount_words(std::hint::black_box(&a)))
    });
    group.bench_function("popcount_words/dispatched", |bch| {
        bch.iter(|| simd::popcount_words(std::hint::black_box(&a)))
    });
    group.bench_function("and_popcount_words/scalar", |bch| {
        bch.iter(|| simd::scalar::and_popcount_words(std::hint::black_box(&a), &b))
    });
    group.bench_function("and_popcount_words/dispatched", |bch| {
        bch.iter(|| simd::and_popcount_words(std::hint::black_box(&a), &b))
    });
    let mut dst = words(13, WORDS);
    group.bench_function("and_words/scalar", |bch| {
        bch.iter(|| simd::scalar::and_words(std::hint::black_box(&mut dst), &b))
    });
    group.bench_function("and_words/dispatched", |bch| {
        bch.iter(|| simd::and_words(std::hint::black_box(&mut dst), &b))
    });

    // Posting shapes: sorted candidate run × sorted `(id, count)` list.
    let cur: Vec<u32> = (0..20_000u32).step_by(3).collect();
    let list: Vec<(u32, u32)> = (0..30_000u32).step_by(2).map(|id| (id, 1 + id % 3)).collect();
    let mut blocks = words(17, 30_000usize.div_ceil(64));
    group.bench_function("intersect_postings/scalar", |bch| {
        bch.iter(|| {
            simd::scalar::intersect_postings(std::hint::black_box(&mut blocks), &list, 2);
        })
    });
    group.bench_function("intersect_postings/dispatched", |bch| {
        bch.iter(|| {
            simd::intersect_postings(std::hint::black_box(&mut blocks), &list, 2);
        })
    });
    let mut out = Vec::with_capacity(cur.len());
    group.bench_function("intersect_pairs/scalar", |bch| {
        bch.iter(|| {
            simd::scalar::intersect_pairs(std::hint::black_box(&cur), &list, 1, &mut out);
            out.len()
        })
    });
    group.bench_function("intersect_pairs/dispatched", |bch| {
        bch.iter(|| {
            simd::intersect_pairs(std::hint::black_box(&cur), &list, 1, &mut out);
            out.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
