//! Verifier microbenches: VF2 vs Ullmann (the two bundled SI engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_engines(c: &mut Criterion) {
    let dataset = molecule_dataset(20, 909);
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("verify");
    group.sample_size(20).measurement_time(Duration::from_secs(2));

    for &qsize in &[4usize, 8, 12] {
        let queries: Vec<_> = (0..10)
            .map(|i| extract_query(&dataset[i % dataset.len()], qsize, &mut rng).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("vf2", qsize), &qsize, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    for g in &dataset {
                        if gc_iso::vf2::exists(std::hint::black_box(q), g) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("ullmann", qsize), &qsize, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    for g in &dataset {
                        if gc_iso::ullmann::exists(std::hint::black_box(q), g) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
        // Ablation: VF2 without the neighbour-signature pruning.
        group.bench_with_input(BenchmarkId::new("vf2_nosig", qsize), &qsize, |b, _| {
            let opts = gc_iso::vf2::Options { neighbor_signatures: false };
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    for g in &dataset {
                        let (found, _) = gc_iso::vf2::enumerate_with_options(
                            std::hint::black_box(q),
                            g,
                            None,
                            opts,
                            &mut |_| gc_iso::vf2::Control::Stop,
                        );
                        if found.is_yes() {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
