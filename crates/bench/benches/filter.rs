//! FTV filter microbenches: PathTrie build cost and candidate throughput as
//! the feature size L grows (the space/filtering-power trade-off behind
//! Experiment II).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_index::{FeatureConfig, PathTrie};
use gc_workload::{extract_query, molecule_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_filter(c: &mut Criterion) {
    let dataset = molecule_dataset(100, 1234);
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<_> =
        (0..20).map(|i| extract_query(&dataset[i % dataset.len()], 8, &mut rng).unwrap()).collect();

    let mut group = c.benchmark_group("path_trie");
    group.sample_size(15).measurement_time(Duration::from_secs(2));

    for &l in &[1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("build", l), &l, |b, &l| {
            b.iter(|| {
                PathTrie::build(std::hint::black_box(&dataset), FeatureConfig::with_max_len(l))
            })
        });
        let trie = PathTrie::build(&dataset, FeatureConfig::with_max_len(l));
        group.bench_with_input(BenchmarkId::new("filter", l), &l, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += trie.candidates(std::hint::black_box(q)).count();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("super_filter", l), &l, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += trie.super_candidates(std::hint::black_box(q)).count();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
