//! Replacement-policy bookkeeping overhead: on_hit updates and victim
//! selection at various cache sizes. Policy work must stay negligible next
//! to sub-iso testing; this bench keeps it honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::{HitCredit, HitKind, Policy, PolicyKind, ReplacementPolicy};
use std::time::Duration;

fn filled_policy(kind: PolicyKind, n: usize) -> Policy {
    let mut p = Policy::new(kind);
    for e in 0..n as u32 {
        p.on_insert(e, e as u64);
        // Give entries varied utilities so rankings are non-trivial.
        let credit = HitCredit {
            kind: HitKind::CachedInQuery,
            tests_saved: (e as u64 * 7) % 101,
            cost_saved: ((e as u64 * 13) % 97) as f64,
        };
        p.on_hit(e, &credit, 1000 + e as u64);
    }
    p
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    group.sample_size(30).measurement_time(Duration::from_secs(1));

    for kind in PolicyKind::all() {
        for &n in &[100usize, 1000, 10_000] {
            let mut p = filled_policy(kind, n);
            group.bench_with_input(BenchmarkId::new(format!("victims/{kind}"), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(p.victims(10)).len())
            });
        }
    }

    let mut p = filled_policy(PolicyKind::Hd, 10_000);
    let credit = HitCredit { kind: HitKind::QueryInCached, tests_saved: 5, cost_saved: 42.0 };
    group.bench_function("on_hit/HD/10000", |b| {
        let mut e = 0u32;
        b.iter(|| {
            e = (e + 1) % 10_000;
            p.on_hit(std::hint::black_box(e), &credit, 99);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
