//! Query extraction from data graphs.
//!
//! The "established principle" for generating query workloads over
//! transaction graph datasets (used by GraphGrepSX, gIndex, iGQ, GraphCache
//! alike) is: pick a data graph, take a random connected subgraph with a
//! target number of edges. Queries produced this way are guaranteed
//! non-empty answers (they are contained in at least their source graph).
//!
//! [`nested_chain`] additionally produces ⊑-chains of queries (each a
//! subgraph of the next), which is how sub/supergraph relationships between
//! *workload* queries arise — the phenomenon GraphCache exploits (paper §1:
//! biochemical queries "range from simple molecules … to complex proteins",
//! social queries "start off broad and become narrower").

use gc_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Edge-count range for extracted queries.
#[derive(Debug, Clone, Copy)]
pub struct QuerySizer {
    /// Minimum edges.
    pub min_edges: usize,
    /// Maximum edges.
    pub max_edges: usize,
}

impl Default for QuerySizer {
    fn default() -> Self {
        QuerySizer { min_edges: 3, max_edges: 12 }
    }
}

/// Extract a random connected subgraph of `source` with about
/// `target_edges` edges (fewer if the graph is smaller), via a random
/// edge-growth walk: start from a random edge, repeatedly add a random
/// incident edge of the current vertex set.
///
/// Returns `None` when `source` has no edges.
pub fn extract_query(source: &Graph, target_edges: usize, rng: &mut impl Rng) -> Option<Graph> {
    if source.edge_count() == 0 || target_edges == 0 {
        return None;
    }
    let edges: Vec<(VertexId, VertexId)> = source.edges().collect();
    let (su, sv) = edges[rng.gen_range(0..edges.len())];
    let mut in_set = vec![false; source.vertex_count()];
    let mut vertices: Vec<VertexId> = Vec::new();
    let mut chosen: Vec<(VertexId, VertexId)> = Vec::new();
    let push_vertex = |v: VertexId, in_set: &mut Vec<bool>, vertices: &mut Vec<VertexId>| {
        if !in_set[v as usize] {
            in_set[v as usize] = true;
            vertices.push(v);
        }
    };
    push_vertex(su, &mut in_set, &mut vertices);
    push_vertex(sv, &mut in_set, &mut vertices);
    chosen.push((su, sv));

    while chosen.len() < target_edges {
        // Collect frontier edges: incident to the vertex set, not chosen yet.
        let mut frontier: Vec<(VertexId, VertexId)> = Vec::new();
        for &v in &vertices {
            for &w in source.neighbors(v) {
                let e = (v.min(w), v.max(w));
                if !chosen.contains(&e) {
                    frontier.push(e);
                }
            }
        }
        if frontier.is_empty() {
            break;
        }
        let e = frontier[rng.gen_range(0..frontier.len())];
        chosen.push(e);
        push_vertex(e.0, &mut in_set, &mut vertices);
        push_vertex(e.1, &mut in_set, &mut vertices);
    }
    Some(induce(source, &vertices, &chosen))
}

/// Build the query graph from selected vertices/edges of `source`,
/// relabelling vertices densely.
fn induce(source: &Graph, vertices: &[VertexId], edges: &[(VertexId, VertexId)]) -> Graph {
    let mut remap = vec![u32::MAX; source.vertex_count()];
    let mut b = GraphBuilder::with_capacity(vertices.len(), edges.len());
    for (i, &v) in vertices.iter().enumerate() {
        remap[v as usize] = i as u32;
        b.add_vertex(source.label(v));
    }
    for &(u, v) in edges {
        b.add_edge(remap[u as usize], remap[v as usize]).expect("edges are distinct");
    }
    b.build()
}

/// Produce a chain of queries `q1 ⊑ q2 ⊑ … ⊑ qk` extracted from `source`,
/// with edge counts given by `sizes` (ascending). The chain is built by
/// extracting the largest query, then repeatedly pruning *leaf-ish* edges
/// while keeping connectivity, so every prefix is a genuine subgraph.
///
/// Returns an empty vec when the source has no edges or `sizes` is empty.
pub fn nested_chain(source: &Graph, sizes: &[usize], rng: &mut impl Rng) -> Vec<Graph> {
    let Some(&largest) = sizes.iter().max() else { return Vec::new() };
    let Some(big) = extract_query(source, largest, rng) else { return Vec::new() };
    let mut sorted: Vec<usize> = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let mut out: Vec<Graph> = Vec::with_capacity(sorted.len());

    let mut current = big;
    for &target in &sorted {
        while current.edge_count() > target {
            match shrink_once(&current, rng) {
                Some(smaller) => current = smaller,
                None => break,
            }
        }
        out.push(current.clone());
    }
    out.reverse(); // ascending sizes: q1 ⊑ q2 ⊑ ...
    out
}

/// Remove one removable edge (an edge whose removal keeps the remaining
/// edge-induced graph connected), dropping isolated vertices.
fn shrink_once(g: &Graph, rng: &mut impl Rng) -> Option<Graph> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    if edges.len() <= 1 {
        return None;
    }
    let mut order: Vec<usize> = (0..edges.len()).collect();
    // Random rotation for variety; try every edge if needed.
    let start = rng.gen_range(0..order.len());
    order.rotate_left(start);
    for &i in &order {
        let mut kept: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len() - 1);
        kept.extend(edges.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &e)| e));
        if edge_induced_connected(g, &kept) {
            let mut vertices: Vec<VertexId> = kept.iter().flat_map(|&(u, v)| [u, v]).collect();
            vertices.sort_unstable();
            vertices.dedup();
            return Some(induce(g, &vertices, &kept));
        }
    }
    None
}

fn edge_induced_connected(g: &Graph, edges: &[(VertexId, VertexId)]) -> bool {
    if edges.is_empty() {
        return true;
    }
    let mut adj: std::collections::HashMap<VertexId, Vec<VertexId>> =
        std::collections::HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let n = adj.len();
    let start = edges[0].0;
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(v) = stack.pop() {
        for &w in adj.get(&v).map_or(&Vec::new(), |x| x) {
            if seen.insert(w) {
                stack.push(w);
            }
        }
    }
    seen.len() == n && g.vertex_count() > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::molecule_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extracted_queries_are_connected_subgraphs() {
        let ds = molecule_dataset(10, 21);
        let mut rng = StdRng::seed_from_u64(5);
        for g in &ds {
            let q = extract_query(g, 6, &mut rng).unwrap();
            assert!(q.is_connected());
            assert!(q.edge_count() <= 6 && q.edge_count() >= 1);
            assert!(gc_iso::vf2::exists(&q, g), "query must embed into its source");
        }
    }

    #[test]
    fn target_larger_than_graph_caps_at_graph() {
        let ds = molecule_dataset(3, 77);
        let mut rng = StdRng::seed_from_u64(5);
        let g = &ds[0];
        let q = extract_query(g, 10_000, &mut rng).unwrap();
        assert_eq!(q.edge_count(), g.edge_count());
        assert!(gc_iso::vf2::exists(&q, g));
    }

    #[test]
    fn no_edges_no_query() {
        let g = gc_graph::graph_from_parts(&[gc_graph::Label(0)], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(extract_query(&g, 3, &mut rng).is_none());
        assert!(extract_query(&g, 0, &mut rng).is_none());
    }

    #[test]
    fn nested_chains_are_nested() {
        let ds = molecule_dataset(5, 33);
        let mut rng = StdRng::seed_from_u64(8);
        for g in &ds {
            let chain = nested_chain(g, &[2, 5, 9], &mut rng);
            assert_eq!(chain.len(), 3);
            for w in chain.windows(2) {
                assert!(
                    gc_iso::vf2::exists(&w[0], &w[1]),
                    "chain must be ⊑-ordered: {} -> {} edges",
                    w[0].edge_count(),
                    w[1].edge_count()
                );
            }
            for q in &chain {
                assert!(q.is_connected());
                assert!(gc_iso::vf2::exists(q, g));
            }
        }
    }

    #[test]
    fn chain_sizes_respected_when_possible() {
        let ds = molecule_dataset(1, 99);
        let mut rng = StdRng::seed_from_u64(1);
        let chain = nested_chain(&ds[0], &[2, 4, 8], &mut rng);
        assert!(chain[0].edge_count() <= 2 + 1);
        assert!(chain[2].edge_count() <= 8);
        assert!(chain[0].edge_count() <= chain[1].edge_count());
        assert!(chain[1].edge_count() <= chain[2].edge_count());
    }
}
