//! Molecule-like graph generator (AIDS dataset substitute).
//!
//! The AIDS Antiviral Screen graphs are small organic molecules: sparse
//! (average degree ≈ 2.1), mostly tree-shaped with a few rings, with a
//! heavily skewed label (atom) distribution dominated by carbon. The
//! generator reproduces those statistics:
//!
//! 1. grow a random tree with valence-capped preferential attachment
//!    (max degree 4, like tetravalent carbon);
//! 2. close a small number of rings by adding edges between nearby tree
//!    vertices (respecting the valence cap);
//! 3. draw labels from a configurable skewed distribution.
//!
//! The cache's behaviour depends on sparsity, label skew, and the
//! containment structure of queries — all preserved here; absolute NCI
//! chemistry is not required (DESIGN.md §4).

use gc_graph::{Graph, GraphBuilder, Label, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the molecule generator.
#[derive(Debug, Clone)]
pub struct MoleculeParams {
    /// Minimum vertices per graph.
    pub min_vertices: usize,
    /// Maximum vertices per graph.
    pub max_vertices: usize,
    /// Maximum vertex degree ("valence").
    pub max_degree: usize,
    /// Probability of attempting one ring closure per tree vertex.
    pub ring_prob: f64,
    /// Cumulative-weight label distribution: `(label, weight)`; weights need
    /// not sum to 1.
    pub label_weights: Vec<(u32, f64)>,
}

impl Default for MoleculeParams {
    fn default() -> Self {
        MoleculeParams {
            min_vertices: 10,
            max_vertices: 60,
            max_degree: 4,
            ring_prob: 0.15,
            // Roughly the AIDS atom mix: C dominates, then O, N, rarer rest.
            label_weights: vec![
                (0, 0.60), // C
                (1, 0.14), // O
                (2, 0.12), // N
                (3, 0.06), // S
                (4, 0.04), // Cl
                (5, 0.02), // F
                (6, 0.01), // P
                (7, 0.01), // Br
            ],
        }
    }
}

impl MoleculeParams {
    fn sample_label(&self, rng: &mut impl Rng) -> Label {
        let total: f64 = self.label_weights.iter().map(|&(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for &(l, w) in &self.label_weights {
            if x < w {
                return Label(l);
            }
            x -= w;
        }
        Label(self.label_weights.last().expect("non-empty weights").0)
    }
}

/// Generate one molecule-like graph.
pub fn molecule(params: &MoleculeParams, rng: &mut impl Rng) -> Graph {
    assert!(params.min_vertices >= 1 && params.max_vertices >= params.min_vertices);
    assert!(params.max_degree >= 2, "valence must allow chains");
    let n = rng.gen_range(params.min_vertices..=params.max_vertices);
    let mut b = GraphBuilder::with_capacity(n, n + n / 4);
    let mut degree = vec![0usize; n];

    for _ in 0..n {
        b.add_vertex(params.sample_label(rng));
    }
    // Tree growth: attach vertex i to a random earlier vertex with spare
    // valence; bias towards low-degree vertices to keep chains long (like
    // molecule backbones).
    for i in 1..n {
        let mut tries = 0;
        let parent = loop {
            let candidate = rng.gen_range(0..i);
            if degree[candidate] < params.max_degree || tries > 16 {
                break candidate;
            }
            tries += 1;
        };
        b.add_edge(parent as VertexId, i as VertexId).expect("tree edges are fresh");
        degree[parent] += 1;
        degree[i] += 1;
    }
    // Ring closures.
    for v in 0..n {
        if degree[v] >= params.max_degree || !rng.gen_bool(params.ring_prob) {
            continue;
        }
        let w = rng.gen_range(0..n);
        if w != v && degree[w] < params.max_degree && !b.has_edge(v as VertexId, w as VertexId) {
            b.add_edge(v as VertexId, w as VertexId).expect("checked non-duplicate");
            degree[v] += 1;
            degree[w] += 1;
        }
    }
    b.build()
}

/// Generate a dataset of `count` molecule-like graphs from a seed.
pub fn molecule_dataset(count: usize, seed: u64) -> Vec<Graph> {
    molecule_dataset_with(count, &MoleculeParams::default(), seed)
}

/// Generate a dataset with custom parameters.
pub fn molecule_dataset_with(count: usize, params: &MoleculeParams, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| molecule(params, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = molecule_dataset(5, 42);
        let b = molecule_dataset(5, 42);
        let c = molecule_dataset(5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_molecule_like() {
        let ds = molecule_dataset(50, 7);
        for g in &ds {
            assert!(g.vertex_count() >= 10 && g.vertex_count() <= 60);
            assert!(g.is_connected(), "molecules are connected");
            assert!(g.max_degree() <= 4, "valence cap");
            assert!(g.avg_degree() < 3.0, "sparse like molecules");
            // Tree has n-1 edges; rings add a few.
            assert!(g.edge_count() >= g.vertex_count() - 1);
            assert!(g.edge_count() <= g.vertex_count() + g.vertex_count() / 2);
        }
    }

    #[test]
    fn labels_are_skewed_towards_carbon() {
        let ds = molecule_dataset(100, 11);
        let mut counts = [0usize; 8];
        let mut total = 0usize;
        for g in &ds {
            for v in g.vertices() {
                counts[g.label(v).0 as usize] += 1;
                total += 1;
            }
        }
        let carbon = counts[0] as f64 / total as f64;
        assert!(carbon > 0.5 && carbon < 0.7, "carbon share {carbon}");
        assert!(counts[7] < counts[0] / 10, "rare labels stay rare");
    }

    #[test]
    fn custom_params_respected() {
        let params = MoleculeParams {
            min_vertices: 3,
            max_vertices: 5,
            max_degree: 2, // paths/cycles only
            ring_prob: 0.0,
            label_weights: vec![(9, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = molecule(&params, &mut rng);
            assert!(g.vertex_count() <= 5);
            assert!(g.max_degree() <= 2);
            assert!(g.vertices().all(|v| g.label(v) == Label(9)));
        }
    }
}
