//! Zipf-distributed sampling over `0..n`.
//!
//! Workload skew is the main knob of the paper's evaluation: repeated and
//! related queries are what a cache exploits. The sampler precomputes the
//! cumulative distribution and draws with binary search, O(log n) per
//! sample.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s ≥ 0`
/// (`s = 0` is uniform; larger `s` is more skewed).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n` (rank 0 is the most likely).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&x).expect("no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; z.n()];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let h = histogram(&z, 100_000, 1);
        for &c in &h {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "{h:?}");
        }
    }

    #[test]
    fn skewed_when_s_large() {
        let z = Zipf::new(10, 1.5);
        let h = histogram(&z, 100_000, 2);
        // Expected head ratio for s=1.5 is 2^1.5 ≈ 2.83.
        assert!(h[0] > 2 * h[1].max(1), "rank 0 dominates: {h:?}");
        assert!(h[0] > 10 * h[9].max(1));
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
