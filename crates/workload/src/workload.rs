//! Workload synthesizers.
//!
//! A *workload* is an ordered stream of (query graph, kind) pairs. Three
//! families cover the regimes the paper's evaluation varies:
//!
//! * **Uniform** — queries drawn uniformly from a pool ("queries are
//!   uniformly selected from a pattern pool", §3.2 Scenario II);
//! * **Zipf** — skewed repetition: a few popular queries recur often (the
//!   regime where exact-match and POP shine);
//! * **Drift** — session chains `q1 ⊑ q2 ⊑ …` emitted together, modelling
//!   queries that start broad and narrow down (§1) — the regime where
//!   sub/super-case hits dominate.
//!
//! Workloads serialize with serde so experiments can persist their exact
//! inputs.

use crate::queries::{extract_query, nested_chain, QuerySizer};
use crate::zipf::Zipf;
use gc_graph::Graph;
use gc_method::QueryKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of a generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Uniform draws from the query pool.
    Uniform,
    /// Zipf-skewed draws (exponent `skew`; 0 = uniform, ~1–1.5 realistic).
    Zipf {
        /// Zipf exponent.
        skew: f64,
    },
    /// Nested ⊑-chains of length `chain_len`, interleaved with repeats.
    Drift {
        /// Queries per chain (ascending sizes).
        chain_len: usize,
        /// Probability of re-emitting a recent query instead of advancing.
        repeat_prob: f64,
    },
}

/// Parameters to generate a [`Workload`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of queries to emit.
    pub n_queries: usize,
    /// Workload family.
    pub kind: WorkloadKind,
    /// Pool size for Uniform/Zipf families.
    pub pool_size: usize,
    /// Edge-count range of extracted queries.
    pub min_edges: usize,
    /// Maximum edges of extracted queries.
    pub max_edges: usize,
    /// Fraction of supergraph queries (0.0 = all subgraph queries).
    pub supergraph_fraction: f64,
    /// RNG seed (workloads are deterministic given dataset + spec).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_queries: 100,
            kind: WorkloadKind::Zipf { skew: 1.0 },
            pool_size: 50,
            min_edges: 3,
            max_edges: 12,
            supergraph_fraction: 0.0,
            seed: 0,
        }
    }
}

/// One workload item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadQuery {
    /// The query graph.
    pub graph: Graph,
    /// Subgraph or supergraph query.
    pub kind: QueryKind,
}

/// An ordered stream of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The queries in execution order.
    pub queries: Vec<WorkloadQuery>,
    /// The spec that generated it (provenance).
    pub spec: WorkloadSpec,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` iff there are no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Generate a workload over `dataset` according to `spec`.
    ///
    /// # Panics
    /// Panics if the dataset has no graph with edges (no queries can be
    /// extracted) while `n_queries > 0`.
    pub fn generate(dataset: &[Graph], spec: &WorkloadSpec) -> Workload {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let sizer = QuerySizer { min_edges: spec.min_edges, max_edges: spec.max_edges };
        let queries = match &spec.kind {
            WorkloadKind::Uniform => pool_driven(dataset, spec, &sizer, None, &mut rng),
            WorkloadKind::Zipf { skew } => {
                pool_driven(dataset, spec, &sizer, Some(*skew), &mut rng)
            }
            WorkloadKind::Drift { chain_len, repeat_prob } => {
                drift(dataset, spec, &sizer, *chain_len, *repeat_prob, &mut rng)
            }
        };
        Workload { queries, spec: spec.clone() }
    }
}

fn pick_kind(spec: &WorkloadSpec, rng: &mut impl Rng) -> QueryKind {
    if spec.supergraph_fraction > 0.0 && rng.gen_bool(spec.supergraph_fraction.clamp(0.0, 1.0)) {
        QueryKind::Supergraph
    } else {
        QueryKind::Subgraph
    }
}

/// Extract one query appropriate for `kind`: subgraph queries are small
/// patterns; supergraph queries are whole data graphs (so their answer sets
/// are non-trivial — a small pattern rarely *contains* any data graph).
fn one_query(
    dataset: &[Graph],
    sizer: &QuerySizer,
    kind: QueryKind,
    rng: &mut impl Rng,
) -> Option<Graph> {
    for _ in 0..64 {
        let source = &dataset[rng.gen_range(0..dataset.len())];
        match kind {
            QueryKind::Subgraph => {
                let target = rng.gen_range(sizer.min_edges..=sizer.max_edges);
                if let Some(q) = extract_query(source, target, rng) {
                    return Some(q);
                }
            }
            QueryKind::Supergraph => {
                if source.edge_count() > 0 {
                    return Some(source.clone());
                }
            }
        }
    }
    None
}

fn pool_driven(
    dataset: &[Graph],
    spec: &WorkloadSpec,
    sizer: &QuerySizer,
    skew: Option<f64>,
    rng: &mut impl Rng,
) -> Vec<WorkloadQuery> {
    if spec.n_queries == 0 {
        return Vec::new();
    }
    assert!(
        dataset.iter().any(|g| g.edge_count() > 0),
        "cannot extract queries from an edgeless dataset"
    );
    let pool_size = spec.pool_size.max(1);
    let pool: Vec<WorkloadQuery> = (0..pool_size)
        .map(|_| {
            let kind = pick_kind(spec, rng);
            let graph = one_query(dataset, sizer, kind, rng)
                .expect("dataset has edges; extraction retries cover empty graphs");
            WorkloadQuery { graph, kind }
        })
        .collect();
    let zipf = skew.map(|s| Zipf::new(pool.len(), s));
    (0..spec.n_queries)
        .map(|_| {
            let idx = match &zipf {
                Some(z) => z.sample(rng),
                None => rng.gen_range(0..pool.len()),
            };
            pool[idx].clone()
        })
        .collect()
}

fn drift(
    dataset: &[Graph],
    spec: &WorkloadSpec,
    sizer: &QuerySizer,
    chain_len: usize,
    repeat_prob: f64,
    rng: &mut impl Rng,
) -> Vec<WorkloadQuery> {
    if spec.n_queries == 0 {
        return Vec::new();
    }
    assert!(
        dataset.iter().any(|g| g.edge_count() > 0),
        "cannot extract queries from an edgeless dataset"
    );
    let chain_len = chain_len.max(2);
    let mut out: Vec<WorkloadQuery> = Vec::with_capacity(spec.n_queries);
    let mut recent: Vec<WorkloadQuery> = Vec::new();

    while out.len() < spec.n_queries {
        if !recent.is_empty() && rng.gen_bool(repeat_prob.clamp(0.0, 0.95)) {
            out.push(recent[rng.gen_range(0..recent.len())].clone());
            continue;
        }
        // New session: a ⊑-chain of ascending sizes from one source graph.
        let kind = pick_kind(spec, rng);
        let source = &dataset[rng.gen_range(0..dataset.len())];
        let sizes: Vec<usize> = (0..chain_len)
            .map(|i| {
                let span = sizer.max_edges.saturating_sub(sizer.min_edges).max(1);
                sizer.min_edges + (i * span) / (chain_len - 1).max(1)
            })
            .collect();
        let chain = nested_chain(source, &sizes, rng);
        if chain.is_empty() {
            continue;
        }
        for q in chain {
            out.push(WorkloadQuery { graph: q, kind });
            if out.len() >= spec.n_queries {
                break;
            }
        }
        let start = out.len().saturating_sub(chain_len);
        recent = out[start..].to_vec();
        if recent.len() > 4 * chain_len {
            recent.drain(..chain_len);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules::molecule_dataset;

    fn spec(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec { n_queries: 40, kind, pool_size: 10, seed: 5, ..WorkloadSpec::default() }
    }

    #[test]
    fn uniform_workload_generates_n() {
        let ds = molecule_dataset(10, 1);
        let w = Workload::generate(&ds, &spec(WorkloadKind::Uniform));
        assert_eq!(w.len(), 40);
        assert!(w.queries.iter().all(|q| q.kind == QueryKind::Subgraph));
        assert!(w.queries.iter().all(|q| q.graph.is_connected()));
    }

    #[test]
    fn zipf_workload_repeats_popular() {
        let ds = molecule_dataset(10, 2);
        let mut s = spec(WorkloadKind::Zipf { skew: 1.5 });
        s.n_queries = 200;
        let w = Workload::generate(&ds, &s);
        // Count occurrences by fingerprint: the top query should repeat a lot.
        let mut counts = std::collections::HashMap::new();
        for q in &w.queries {
            *counts.entry(gc_graph::hash::fingerprint(&q.graph)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 20, "zipf should repeat the head query: max={max}");
    }

    #[test]
    fn drift_workload_contains_chains() {
        let ds = molecule_dataset(10, 3);
        let s = spec(WorkloadKind::Drift { chain_len: 3, repeat_prob: 0.2 });
        let w = Workload::generate(&ds, &s);
        assert_eq!(w.len(), 40);
        // At least one adjacent pair must be a strict ⊑ relationship.
        let mut nested_pairs = 0;
        for pair in w.queries.windows(2) {
            if pair[0].graph.edge_count() < pair[1].graph.edge_count()
                && gc_iso::vf2::exists(&pair[0].graph, &pair[1].graph)
            {
                nested_pairs += 1;
            }
        }
        assert!(nested_pairs > 5, "drift chains must appear: {nested_pairs}");
    }

    #[test]
    fn supergraph_fraction_respected() {
        let ds = molecule_dataset(10, 4);
        let mut s = spec(WorkloadKind::Uniform);
        s.supergraph_fraction = 1.0;
        let w = Workload::generate(&ds, &s);
        assert!(w.queries.iter().all(|q| q.kind == QueryKind::Supergraph));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = molecule_dataset(10, 5);
        let s = spec(WorkloadKind::Zipf { skew: 1.0 });
        let a = Workload::generate(&ds, &s);
        let b = Workload::generate(&ds, &s);
        assert_eq!(a, b);
        let mut s2 = s.clone();
        s2.seed += 1;
        assert_ne!(a, Workload::generate(&ds, &s2));
    }

    #[test]
    fn zero_queries_ok() {
        let ds = molecule_dataset(2, 6);
        let mut s = spec(WorkloadKind::Uniform);
        s.n_queries = 0;
        assert!(Workload::generate(&ds, &s).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = molecule_dataset(4, 7);
        let mut s = spec(WorkloadKind::Drift { chain_len: 3, repeat_prob: 0.3 });
        s.n_queries = 10;
        let w = Workload::generate(&ds, &s);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
