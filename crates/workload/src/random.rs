//! Classic random-graph models with uniform labels.
//!
//! Experiment I varies *dataset characteristics*; besides the molecule-like
//! generator these two standard models cover the dense/uniform and
//! heavy-tailed regimes.

use gc_graph::{Graph, GraphBuilder, Label, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)` with labels drawn uniformly from `0..labels`.
pub fn erdos_renyi(n: usize, p: f64, labels: u32, rng: &mut impl Rng) -> Graph {
    assert!(labels > 0, "need at least one label");
    let mut b = GraphBuilder::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize);
    for _ in 0..n {
        b.add_vertex(Label(rng.gen_range(0..labels)));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as VertexId, v as VertexId).expect("fresh pair");
            }
        }
    }
    b.build()
}

/// Barabási–Albert-style preferential attachment: each new vertex attaches
/// `m` edges to existing vertices with probability proportional to degree,
/// producing a heavy-tailed degree distribution.
pub fn barabasi_albert(n: usize, m: usize, labels: u32, rng: &mut impl Rng) -> Graph {
    assert!(labels > 0 && m >= 1);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    for _ in 0..n {
        b.add_vertex(Label(rng.gen_range(0..labels)));
    }
    if n <= 1 {
        return b.build();
    }
    // Repeated-endpoint list: sampling an element uniformly is sampling a
    // vertex proportional to degree (+1 smoothing so isolated starts count).
    let mut endpoints: Vec<VertexId> = vec![0];
    for v in 1..n {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m.min(v) && guard < 32 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as VertexId && b.add_edge_dedup(v as VertexId, t).expect("valid ids") {
                endpoints.push(t);
                endpoints.push(v as VertexId);
                attached += 1;
            }
        }
        if attached == 0 {
            // Guarantee connectivity.
            let t = rng.gen_range(0..v) as VertexId;
            let _ = b.add_edge_dedup(v as VertexId, t);
            endpoints.push(t);
            endpoints.push(v as VertexId);
        }
    }
    b.build()
}

/// Dataset of `count` ER graphs (deterministic per seed).
pub fn er_dataset(count: usize, n: usize, p: f64, labels: u32, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| erdos_renyi(n, p, labels, &mut rng)).collect()
}

/// Dataset of `count` BA graphs (deterministic per seed).
pub fn ba_dataset(count: usize, n: usize, m: usize, labels: u32, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| barabasi_albert(n, m, labels, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_basic_properties() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(30, 0.2, 4, &mut rng);
        assert_eq!(g.vertex_count(), 30);
        let expected = 0.2 * (30.0 * 29.0 / 2.0);
        let m = g.edge_count() as f64;
        assert!(m > expected * 0.4 && m < expected * 1.8, "edges {m} vs expected {expected}");
        assert!(g.vertices().all(|v| g.label(v).0 < 4));
    }

    #[test]
    fn er_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty = erdos_renyi(10, 0.0, 2, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, 2, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn ba_is_connected_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = barabasi_albert(200, 2, 3, &mut rng);
        assert!(g.is_connected());
        // Heavy tail: max degree well above the mean.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn datasets_deterministic() {
        assert_eq!(er_dataset(3, 10, 0.3, 2, 1), er_dataset(3, 10, 0.3, 2, 1));
        assert_eq!(ba_dataset(3, 20, 2, 2, 1), ba_dataset(3, 20, 2, 2, 1));
        assert_ne!(ba_dataset(3, 20, 2, 2, 1), ba_dataset(3, 20, 2, 2, 2));
    }

    #[test]
    fn tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(0, 0.5, 1, &mut rng).vertex_count(), 0);
        assert_eq!(barabasi_albert(1, 2, 1, &mut rng).vertex_count(), 1);
    }
}
