//! # gc-workload — datasets and workloads for GraphCache experiments
//!
//! The paper evaluates GC on the AIDS Antiviral Screen molecules plus
//! synthetic datasets, with >6M queries "generated from graphs in the
//! dataset following established principles" (§3). Neither the NCI molecules
//! nor the authors' query logs are redistributable here, so this crate
//! provides faithful synthetic substitutes (see DESIGN.md §4):
//!
//! * [`molecules`] — molecule-like labelled graphs (sparse, tree-plus-rings,
//!   skewed atom-label distribution) standing in for AIDS;
//! * [`random`] — Erdős–Rényi and preferential-attachment generators for the
//!   "synthetic datasets with various characteristics";
//! * [`queries`] — query extraction from data graphs (random connected
//!   subgraphs — the established principle in this literature) and nested
//!   query chains (`q1 ⊑ q2 ⊑ …`) that create sub/supergraph relationships
//!   between workload queries;
//! * [`workload`] — workload synthesizers: uniform, Zipf-skewed, and
//!   drifting session mixes over a query pool, plus serde serialization so
//!   experiment inputs are reproducible artefacts;
//! * [`zipf`] — a small Zipf sampler (no external dependency).
//!
//! Every generator takes an explicit RNG so experiments are deterministic
//! given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod molecules;
pub mod queries;
pub mod random;
pub mod workload;
pub mod zipf;

pub use molecules::{molecule_dataset, MoleculeParams};
pub use queries::{extract_query, nested_chain, QuerySizer};
pub use workload::{Workload, WorkloadKind, WorkloadQuery, WorkloadSpec};
pub use zipf::Zipf;
