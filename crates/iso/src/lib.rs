//! # gc-iso — subgraph isomorphism engines for GraphCache
//!
//! GraphCache's Verifier component (paper Fig. 1) decides `q ⊑ G`:
//! does a *non-induced* subgraph isomorphism from the pattern `q` into the
//! target `G` exist, respecting vertex labels? This crate provides:
//!
//! * [`vf2`] — the production engine, a VF2-style backtracking search
//!   (Cordella et al., TPAMI 2004 — the paper's reference \[3\]) with
//!   label/degree pruning, connectivity-driven search order, embedding
//!   enumeration, and step budgets;
//! * [`ullmann`] — Ullmann's algorithm with bitset domains and forward
//!   checking; used as a cross-checking baseline and for ablation benches;
//! * [`profile`] — precomputed per-graph verification profiles
//!   ([`GraphProfile`]) and reusable search scratch ([`VfScratch`]): the
//!   allocation-free hot path both engines expose as `embeds_with`;
//! * [`iso`] — exact graph-isomorphism testing built on top (for the cache's
//!   exact-match hits);
//! * [`Matcher`] — object-safe abstraction so Method M can swap engines
//!   ("pluggable cache", paper §1).
//!
//! All engines are exact: given enough budget they never report a wrong
//! answer (property-tested against a brute-force reference).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iso;
mod order;
pub mod profile;
pub mod ullmann;
pub mod vf2;

pub use order::search_order;
pub use profile::{GraphProfile, ProfileRef, VerifyCtx, VfScratch};

use gc_graph::Graph;

/// Result of a (possibly budgeted) containment search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Found {
    /// An embedding exists.
    Yes,
    /// No embedding exists.
    No,
    /// The step budget ran out before the search completed.
    Unknown,
}

impl Found {
    /// `true` iff the outcome is [`Found::Yes`].
    pub fn is_yes(self) -> bool {
        matches!(self, Found::Yes)
    }

    /// Convert to `Option<bool>`; `None` when the budget was exhausted.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Found::Yes => Some(true),
            Found::No => Some(false),
            Found::Unknown => None,
        }
    }
}

/// Statistics produced by one search invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of candidate-pair extensions attempted (search tree nodes).
    pub steps: u64,
    /// Number of complete embeddings found (for counting searches).
    pub embeddings: u64,
}

/// An exact subgraph-isomorphism engine.
///
/// Implementations must be exact: [`Found::Yes`]/[`Found::No`] answers are
/// authoritative; [`Found::Unknown`] may only be returned when `budget` is
/// `Some` and was exhausted.
pub trait Matcher: Send + Sync {
    /// Does `pattern ⊑ target` (non-induced, label-preserving)?
    fn contains(&self, pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found;

    /// Engine name for reports and dashboards.
    fn name(&self) -> &'static str;
}

/// The default production matcher (VF2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Vf2Matcher;

impl Matcher for Vf2Matcher {
    fn contains(&self, pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found {
        vf2::exists_budgeted(pattern, target, budget)
    }

    fn name(&self) -> &'static str {
        "vf2"
    }
}

/// Ullmann matcher (baseline / cross-check).
#[derive(Debug, Clone, Copy, Default)]
pub struct UllmannMatcher;

impl Matcher for UllmannMatcher {
    fn contains(&self, pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found {
        ullmann::exists_budgeted(pattern, target, budget)
    }

    fn name(&self) -> &'static str {
        "ullmann"
    }
}

/// Convenience: non-induced labelled subgraph test with the default engine.
pub fn is_subgraph(pattern: &Graph, target: &Graph) -> bool {
    vf2::exists(pattern, target)
}
