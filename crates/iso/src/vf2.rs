//! VF2-style backtracking search for non-induced labelled subgraph
//! isomorphism.
//!
//! This is the Verifier implementation referenced as \[3\] (Cordella et al.)
//! by the paper. The search maps pattern vertices to target vertices along a
//! connectivity-driven order (see [`crate::search_order`]), generating
//! candidates from the images of already-matched neighbours and pruning with
//! label equality and degree feasibility.
//!
//! Two entry tiers:
//!
//! * the classic from-scratch functions ([`enumerate`], [`exists`], …) which
//!   compute summaries, signatures and the search order per call — right for
//!   one-off tests;
//! * [`embeds_with`], the **hot-path** entry: all per-graph setup comes from
//!   a precomputed [`VerifyCtx`] and all mutable search state from a
//!   reusable [`VfScratch`], so testing one query against thousands of
//!   candidates performs zero per-candidate setup or heap allocation.

use crate::profile::{sig_dominates, signatures, VerifyCtx, VfScratch, UNMAPPED};
use crate::{Found, SearchStats};
use gc_graph::invariants::GraphSummary;
use gc_graph::{Graph, VertexId};

/// Search options (ablation knobs; defaults are the production setting).
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Prune candidate pairs whose neighbour-label signature cannot
    /// dominate the pattern vertex's (packed 8-bucket counts; sound for
    /// non-induced matching). Default on.
    pub neighbor_signatures: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { neighbor_signatures: true }
    }
}

/// Control returned by enumeration callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep enumerating embeddings.
    Continue,
    /// Stop the search now.
    Stop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Stop,
    Budget,
}

/// The backtracking search over borrowed state: graphs and profiles come
/// from the caller (precomputed or throwaway), mapping/occupancy buffers
/// from a [`VfScratch`] or a local allocation. Everything inside
/// [`Search::search`] is allocation-free.
struct Search<'a> {
    p: &'a Graph,
    t: &'a Graph,
    order: &'a [VertexId],
    /// pattern vertex -> target vertex (UNMAPPED if free)
    mapping: &'a mut [u32],
    used: &'a mut [bool],
    /// Packed neighbour-label signatures (empty when disabled).
    p_sig: &'a [u64],
    t_sig: &'a [u64],
    steps: u64,
    budget: u64,
    embeddings: u64,
}

impl Search<'_> {
    #[inline]
    fn feasible(&self, u: VertexId, v: VertexId) -> bool {
        if self.used[v as usize] || self.p.label(u) != self.t.label(v) {
            return false;
        }
        if self.t.degree(v) < self.p.degree(u) {
            return false;
        }
        if !self.p_sig.is_empty() && !sig_dominates(self.t_sig[v as usize], self.p_sig[u as usize])
        {
            return false;
        }
        // Every already-matched neighbour of u must map to a neighbour of v.
        for &w in self.p.neighbors(u) {
            let img = self.mapping[w as usize];
            if img != UNMAPPED && !self.t.has_edge(v, img) {
                return false;
            }
        }
        true
    }

    fn search(&mut self, depth: usize, cb: &mut dyn FnMut(&[u32]) -> Control) -> Flow {
        if depth == self.order.len() {
            self.embeddings += 1;
            return match cb(self.mapping) {
                Control::Continue => Flow::Continue,
                Control::Stop => Flow::Stop,
            };
        }
        let u = self.order[depth];

        // Candidate generation: restrict to neighbours of the matched
        // neighbour whose image has the smallest degree; fall back to a scan
        // of all target vertices when u starts a new component.
        let mut anchor: Option<VertexId> = None; // image in target
        for &w in self.p.neighbors(u) {
            let img = self.mapping[w as usize];
            if img != UNMAPPED && anchor.is_none_or(|a| self.t.degree(img) < self.t.degree(a)) {
                anchor = Some(img);
            }
        }

        match anchor {
            Some(a) => {
                // Split borrows: iterating a copied neighbour list would
                // allocate; instead index into the slice by position.
                let deg = self.t.degree(a);
                for i in 0..deg {
                    let v = self.t.neighbors(a)[i];
                    let flow = self.try_pair(depth, u, v, cb);
                    if flow != Flow::Continue {
                        return flow;
                    }
                }
            }
            None => {
                for v in self.t.vertices() {
                    let flow = self.try_pair(depth, u, v, cb);
                    if flow != Flow::Continue {
                        return flow;
                    }
                }
            }
        }
        Flow::Continue
    }

    #[inline]
    fn try_pair(
        &mut self,
        depth: usize,
        u: VertexId,
        v: VertexId,
        cb: &mut dyn FnMut(&[u32]) -> Control,
    ) -> Flow {
        self.steps += 1;
        if self.steps > self.budget {
            return Flow::Budget;
        }
        if !self.feasible(u, v) {
            return Flow::Continue;
        }
        self.mapping[u as usize] = v;
        self.used[v as usize] = true;
        let flow = self.search(depth + 1, cb);
        self.mapping[u as usize] = UNMAPPED;
        self.used[v as usize] = false;
        flow
    }

    fn outcome(flow: Flow, found: bool) -> Found {
        match (flow, found) {
            (Flow::Budget, false) => Found::Unknown,
            (_, true) => Found::Yes,
            (_, false) => Found::No,
        }
    }
}

/// Existence test over a precomputed [`VerifyCtx`] with a reusable
/// [`VfScratch`] — the verification hot path.
///
/// Equivalent to [`exists_budgeted`] on the same pair (the decision never
/// differs; step counts can, because the profile's search order may be built
/// from different label statistics). Performs no heap allocation once the
/// scratch has grown to the largest candidate seen.
pub fn embeds_with(
    ctx: &VerifyCtx<'_>,
    budget: Option<u64>,
    scratch: &mut VfScratch,
) -> (Found, SearchStats) {
    if ctx.pattern.vertex_count() == 0 {
        return (Found::Yes, SearchStats { steps: 0, embeddings: 1 });
    }
    // Release-mode guard (not just the debug assert in `VerifyCtx::new`,
    // which literal construction can bypass): a target-only profile on the
    // pattern side would make the search think depth 0 is already complete
    // and report a false positive.
    assert_eq!(
        ctx.pattern_profile.order.len(),
        ctx.pattern.vertex_count(),
        "vf2::embeds_with requires a full pattern profile (with search order)"
    );
    if !ctx.pattern_profile.summary.may_embed_into(ctx.target_profile.summary) {
        return (Found::No, SearchStats::default());
    }
    let (mapping, used) =
        scratch.vf2_buffers(ctx.pattern.vertex_count(), ctx.target.vertex_count());
    let mut search = Search {
        p: ctx.pattern,
        t: ctx.target,
        order: ctx.pattern_profile.order,
        mapping,
        used,
        p_sig: ctx.pattern_profile.sig,
        t_sig: ctx.target_profile.sig,
        steps: 0,
        budget: budget.unwrap_or(u64::MAX),
        embeddings: 0,
    };
    let mut found = false;
    let flow = search.search(0, &mut |_| {
        found = true;
        Control::Stop
    });
    let stats = SearchStats { steps: search.steps, embeddings: search.embeddings };
    (Search::outcome(flow, found), stats)
}

/// Run the search, invoking `cb` for each embedding found.
///
/// `cb` receives the mapping array (`mapping[pattern_vertex] = target_vertex`)
/// and can stop the search early. Returns the outcome and search statistics.
pub fn enumerate(
    pattern: &Graph,
    target: &Graph,
    budget: Option<u64>,
    cb: &mut dyn FnMut(&[u32]) -> Control,
) -> (Found, SearchStats) {
    enumerate_with_options(pattern, target, budget, Options::default(), cb)
}

/// [`enumerate`] with explicit [`Options`] (ablation entry point).
pub fn enumerate_with_options(
    pattern: &Graph,
    target: &Graph,
    budget: Option<u64>,
    opts: Options,
    cb: &mut dyn FnMut(&[u32]) -> Control,
) -> (Found, SearchStats) {
    // Trivial cases: the empty pattern embeds everywhere.
    if pattern.vertex_count() == 0 {
        let stats = SearchStats { steps: 0, embeddings: 1 };
        cb(&[]);
        return (Found::Yes, stats);
    }
    if !GraphSummary::of(pattern).may_embed_into(&GraphSummary::of(target)) {
        return (Found::No, SearchStats::default());
    }
    let freq = target.label_histogram();
    let order = crate::search_order(pattern, Some(&freq));
    let (p_sig, t_sig) = if opts.neighbor_signatures {
        (signatures(pattern), signatures(target))
    } else {
        (Vec::new(), Vec::new())
    };
    let mut mapping = vec![UNMAPPED; pattern.vertex_count()];
    let mut used = vec![false; target.vertex_count()];
    let mut search = Search {
        p: pattern,
        t: target,
        order: &order,
        mapping: &mut mapping,
        used: &mut used,
        p_sig: &p_sig,
        t_sig: &t_sig,
        steps: 0,
        budget: budget.unwrap_or(u64::MAX),
        embeddings: 0,
    };
    let mut found = false;
    let mut wrapped = |m: &[u32]| {
        found = true;
        cb(m)
    };
    let flow = search.search(0, &mut wrapped);
    let stats = SearchStats { steps: search.steps, embeddings: search.embeddings };
    (Search::outcome(flow, found), stats)
}

/// Existence test with an optional step budget.
pub fn exists_budgeted(pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found {
    enumerate(pattern, target, budget, &mut |_| Control::Stop).0
}

/// Unbudgeted existence test.
pub fn exists(pattern: &Graph, target: &Graph) -> bool {
    exists_budgeted(pattern, target, None).is_yes()
}

/// Existence test that also reports search statistics (for PINC-style cost
/// accounting in the cache).
pub fn exists_with_stats(
    pattern: &Graph,
    target: &Graph,
    budget: Option<u64>,
) -> (Found, SearchStats) {
    enumerate(pattern, target, budget, &mut |_| Control::Stop)
}

/// Count all embeddings (automorphism-distinct mappings).
pub fn count_embeddings(pattern: &Graph, target: &Graph, budget: Option<u64>) -> (u64, Found) {
    let (outcome, stats) = enumerate(pattern, target, budget, &mut |_| Control::Continue);
    (stats.embeddings, outcome)
}

/// Collect the first `limit` embeddings as mapping vectors.
pub fn find_embeddings(pattern: &Graph, target: &Graph, limit: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    enumerate(pattern, target, None, &mut |m| {
        out.push(m.to_vec());
        if out.len() >= limit {
            Control::Stop
        } else {
            Control::Continue
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GraphProfile;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn triangle_in_k4() {
        let tri = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(exists(&tri, &k4));
        // 4 choose 3 triangles * 3! automorphic mappings = 24 embeddings.
        assert_eq!(count_embeddings(&tri, &k4, None).0, 24);
    }

    #[test]
    fn triangle_not_in_tree() {
        let tri = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let tree = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert!(!exists(&tri, &tree));
    }

    #[test]
    fn labels_must_match() {
        let p = g(&[1, 2], &[(0, 1)]);
        let t_ok = g(&[2, 1, 3], &[(0, 1), (1, 2)]);
        let t_no = g(&[1, 1, 3], &[(0, 1), (1, 2)]);
        assert!(exists(&p, &t_ok));
        assert!(!exists(&p, &t_no));
    }

    #[test]
    fn non_induced_semantics() {
        // P3 (path on 3) embeds into a triangle non-induced even though the
        // endpoints are adjacent in the target.
        let p3 = g(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let tri = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        assert!(exists(&p3, &tri));
    }

    #[test]
    fn every_graph_contains_itself() {
        let x = g(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(exists(&x, &x));
    }

    #[test]
    fn empty_pattern_embeds() {
        let e = g(&[], &[]);
        let t = g(&[0], &[]);
        assert!(exists(&e, &t));
        assert!(exists(&e, &e));
    }

    #[test]
    fn pattern_larger_than_target() {
        let p = g(&[0, 0], &[(0, 1)]);
        let t = g(&[0], &[]);
        assert!(!exists(&p, &t));
    }

    #[test]
    fn disconnected_pattern() {
        let p = g(&[0, 1], &[]); // two isolated vertices, labels 0 and 1
        let t = g(&[1, 0], &[(0, 1)]);
        assert!(exists(&p, &t));
        let t2 = g(&[0, 0], &[(0, 1)]);
        assert!(!exists(&p, &t2));
        // Injectivity across components: two isolated 0-labelled vertices
        // need two distinct images.
        let p2 = g(&[0, 0], &[]);
        let t3 = g(&[0, 1], &[]);
        assert!(!exists(&p2, &t3));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A hard-ish instance with tiny budget.
        let p = g(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 10], &edges);
        assert_eq!(exists_budgeted(&p, &t, Some(1)), Found::Unknown);
        assert_eq!(exists_budgeted(&p, &t, None), Found::Yes);
    }

    #[test]
    fn embeddings_are_valid() {
        let p = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let t = g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let embs = find_embeddings(&p, &t, 100);
        assert!(!embs.is_empty());
        for m in &embs {
            // label-preserving
            for pv in p.vertices() {
                assert_eq!(p.label(pv), t.label(m[pv as usize]));
            }
            // injective
            let mut imgs = m.clone();
            imgs.sort_unstable();
            imgs.dedup();
            assert_eq!(imgs.len(), m.len());
            // edge-preserving
            for (u, v) in p.edges() {
                assert!(t.has_edge(m[u as usize], m[v as usize]));
            }
        }
    }

    #[test]
    fn count_path_in_cycle() {
        // P2 (one edge, both labels 0) in C4: 4 edges * 2 orientations = 8.
        let p2 = g(&[0, 0], &[(0, 1)]);
        let c4 = g(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_embeddings(&p2, &c4, None).0, 8);
    }

    #[test]
    fn stats_steps_nonzero() {
        let p = g(&[0, 0], &[(0, 1)]);
        let t = g(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let (f, stats) = exists_with_stats(&p, &t, None);
        assert_eq!(f, Found::Yes);
        assert!(stats.steps > 0);
    }

    #[test]
    fn embeds_with_matches_from_scratch() {
        let cases = [
            (g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]), g(&[0; 4], &[(0, 1), (0, 2), (0, 3)])),
            (g(&[0, 1], &[(0, 1)]), g(&[1, 0, 1], &[(0, 1), (1, 2)])),
            (g(&[], &[]), g(&[5], &[])),
            (g(&[0, 0], &[]), g(&[0, 1], &[])),
        ];
        let mut scratch = VfScratch::new();
        for (p, t) in &cases {
            let pp = GraphProfile::new(p, Some(&t.label_histogram()));
            let tp = GraphProfile::target_only(t);
            let ctx = VerifyCtx::from_profiles(p, &pp, t, &tp);
            let (found, _) = embeds_with(&ctx, None, &mut scratch);
            assert_eq!(found, exists_budgeted(p, t, None), "p={p:?} t={t:?}");
        }
    }

    #[test]
    fn embeds_with_budget_unknown() {
        let p = g(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 10], &edges);
        let pp = GraphProfile::new(&p, None);
        let tp = GraphProfile::target_only(&t);
        let mut scratch = VfScratch::new();
        let ctx = VerifyCtx::from_profiles(&p, &pp, &t, &tp);
        assert_eq!(embeds_with(&ctx, Some(1), &mut scratch).0, Found::Unknown);
        assert_eq!(embeds_with(&ctx, None, &mut scratch).0, Found::Yes);
    }
}
