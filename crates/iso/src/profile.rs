//! Precomputed verification context and reusable matcher scratch.
//!
//! Every sub-iso test needs the same per-graph setup: a [`GraphSummary`] for
//! the cheap may-embed pre-check, packed neighbour-label signatures for
//! candidate pruning, and (for the pattern side) a connectivity-driven search
//! order. Computing these from scratch inside [`crate::vf2::enumerate`] is
//! fine for one-off tests but wasteful on the cache's verification hot path,
//! where one query is tested against thousands of dataset graphs and the
//! query-side work is identical for every candidate.
//!
//! This module splits the setup out of the search:
//!
//! * [`GraphProfile`] — the owned per-graph precomputation (summary,
//!   signatures, search order). Datasets build one per graph at load time;
//!   queries build one per query.
//! * [`ProfileRef`] — a cheap borrowed view, so profiles can live in flat
//!   side arrays (see `gc-method`'s `DatasetProfiles`) without reshaping.
//! * [`VerifyCtx`] — one candidate pair: pattern/target graphs plus their
//!   profiles. Building it is pointer shuffling only.
//! * [`VfScratch`] — the mutable search state (VF2 mapping arrays, Ullmann
//!   domain bitsets, spill buffers) reused across candidates. Buffers grow
//!   to the high-water mark of the sizes seen and are never shrunk, so after
//!   warm-up the per-candidate search loop performs **zero heap
//!   allocations** (asserted by a counting-allocator test).
//!
//! The profiled entry points are [`crate::vf2::embeds_with`] and
//! [`crate::ullmann::embeds_with`]; the classic from-scratch functions are
//! thin wrappers that build a throwaway profile and scratch.

use gc_graph::invariants::GraphSummary;
use gc_graph::{Graph, VertexId};

pub(crate) const UNMAPPED: u32 = u32::MAX;

/// Packed neighbour-label signature of every vertex: 8 byte-wide saturating
/// buckets (label mod 8 -> count capped at 255). An embedding maps the
/// neighbours of a pattern vertex injectively, label-preservingly into the
/// neighbours of its image, so bucket-wise domination is a necessary
/// condition even with labels merged mod 8.
pub fn signatures(g: &Graph) -> Vec<u64> {
    g.vertices()
        .map(|v| {
            let mut sig = 0u64;
            for &w in g.neighbors(v) {
                let shift = ((g.label(w).0 as usize) % 8) * 8;
                let bucket = (sig >> shift) & 0xFF;
                if bucket < 0xFF {
                    sig += 1u64 << shift;
                }
            }
            sig
        })
        .collect()
}

/// Byte-wise `>=` over all 8 signature buckets.
#[inline]
pub fn sig_dominates(target: u64, pattern: u64) -> bool {
    for i in 0..8 {
        let shift = i * 8;
        if (target >> shift) & 0xFF < (pattern >> shift) & 0xFF {
            return false;
        }
    }
    true
}

/// Owned per-graph precomputation for repeated sub-iso tests.
///
/// Serializable so cached queries can persist their profile alongside the
/// graph (warm starts re-derive it deterministically anyway).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GraphProfile {
    /// Cheap containment invariants (size, labels, degree sequence).
    pub summary: GraphSummary,
    /// Packed neighbour-label signature per vertex.
    pub sig: Vec<u64>,
    /// Pattern-role search order ([`crate::search_order`]); empty for
    /// profiles built with [`GraphProfile::target_only`].
    pub order: Vec<VertexId>,
}

impl GraphProfile {
    /// Full profile: summary, signatures, and a search order computed with
    /// the given target label frequencies (see [`crate::search_order`]).
    pub fn new(g: &Graph, label_freq: Option<&[u32]>) -> Self {
        GraphProfile {
            summary: GraphSummary::of(g),
            sig: signatures(g),
            order: crate::search_order(g, label_freq),
        }
    }

    /// Profile for a graph that only ever plays the *target* role (no search
    /// order). Pattern-side use of such a profile is a logic error.
    pub fn target_only(g: &Graph) -> Self {
        GraphProfile { summary: GraphSummary::of(g), sig: signatures(g), order: Vec::new() }
    }

    /// Borrowed view of this profile.
    pub fn as_ref(&self) -> ProfileRef<'_> {
        ProfileRef { summary: &self.summary, sig: &self.sig, order: &self.order }
    }

    /// Approximate heap bytes held (for cache memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.sig.len() * 8
            + self.order.len() * 4
            + self.summary.label_hist.len() * 4
            + self.summary.degrees_desc.len() * 4
    }
}

/// Borrowed view of a graph's precomputation; what the engines consume.
///
/// Decoupled from [`GraphProfile`] so callers can store profiles in flat
/// side arrays (one `Vec<u64>` of signatures for the whole dataset, etc.)
/// and hand out slices.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRef<'a> {
    /// Containment invariants.
    pub summary: &'a GraphSummary,
    /// Packed neighbour-label signature per vertex.
    pub sig: &'a [u64],
    /// Pattern-role search order (may be empty for target-only profiles).
    pub order: &'a [VertexId],
}

/// One candidate pair ready for verification: graphs plus their profiles.
///
/// Constructing a `VerifyCtx` performs no computation; all the per-graph
/// work was done when the profiles were built.
#[derive(Debug, Clone, Copy)]
pub struct VerifyCtx<'a> {
    /// The pattern graph (the smaller side of `pattern ⊑ target`).
    pub pattern: &'a Graph,
    /// Pattern profile; its `order` must cover every pattern vertex.
    pub pattern_profile: ProfileRef<'a>,
    /// The target graph.
    pub target: &'a Graph,
    /// Target profile (`order` unused).
    pub target_profile: ProfileRef<'a>,
}

impl<'a> VerifyCtx<'a> {
    /// Assemble a context from borrowed profile views.
    pub fn new(
        pattern: &'a Graph,
        pattern_profile: ProfileRef<'a>,
        target: &'a Graph,
        target_profile: ProfileRef<'a>,
    ) -> Self {
        debug_assert_eq!(pattern_profile.order.len(), pattern.vertex_count());
        debug_assert_eq!(pattern_profile.sig.len(), pattern.vertex_count());
        debug_assert_eq!(target_profile.sig.len(), target.vertex_count());
        VerifyCtx { pattern, pattern_profile, target, target_profile }
    }

    /// Assemble a context from owned profiles.
    pub fn from_profiles(
        pattern: &'a Graph,
        pattern_profile: &'a GraphProfile,
        target: &'a Graph,
        target_profile: &'a GraphProfile,
    ) -> Self {
        Self::new(pattern, pattern_profile.as_ref(), target, target_profile.as_ref())
    }
}

/// Reusable matcher scratch: all mutable search state for both engines.
///
/// Create one per worker thread and pass it to every
/// [`crate::vf2::embeds_with`] / [`crate::ullmann::embeds_with`] call; the
/// buffers are re-initialized per candidate (within capacity — `Vec::resize`
/// after `clear` never reallocates below the high-water mark) and grown only
/// when a larger candidate arrives.
#[derive(Debug, Default)]
pub struct VfScratch {
    /// VF2: pattern vertex -> target vertex ([`UNMAPPED`] if free).
    pub(crate) mapping: Vec<u32>,
    /// VF2: target-vertex occupancy.
    pub(crate) used: Vec<bool>,
    /// Ullmann: levelled candidate domains, `(pn + 1)` levels of
    /// `pn * words_per_row` bitset words each (level = search depth).
    pub(crate) dom: Vec<u64>,
    /// Ullmann: pattern vertex -> assigned target vertex ([`UNMAPPED`]).
    pub(crate) assigned: Vec<u32>,
    /// Ullmann: target-vertex occupancy.
    pub(crate) ull_used: Vec<bool>,
    /// Ullmann: refinement removal spill buffer.
    pub(crate) removals: Vec<u32>,
}

impl VfScratch {
    /// Fresh, empty scratch (no buffers allocated yet).
    pub fn new() -> Self {
        VfScratch::default()
    }

    /// Prepare the VF2 buffers for a `(pn, tn)` candidate; returns
    /// `(mapping, used)` reset to their initial values.
    pub(crate) fn vf2_buffers(&mut self, pn: usize, tn: usize) -> (&mut [u32], &mut [bool]) {
        self.mapping.clear();
        self.mapping.resize(pn, UNMAPPED);
        self.used.clear();
        self.used.resize(tn, false);
        (&mut self.mapping, &mut self.used)
    }

    /// Prepare the Ullmann buffers for a `(pn, tn)` candidate with
    /// `words` bitset words per domain row. Domains are zeroed; the caller
    /// seeds level 0.
    #[allow(clippy::type_complexity)]
    pub(crate) fn ullmann_buffers(
        &mut self,
        pn: usize,
        tn: usize,
        words: usize,
    ) -> (&mut [u64], &mut [u32], &mut [bool], &mut Vec<u32>) {
        let level = pn * words;
        self.dom.clear();
        self.dom.resize((pn + 1) * level, 0);
        self.assigned.clear();
        self.assigned.resize(pn, UNMAPPED);
        self.ull_used.clear();
        self.ull_used.resize(tn, false);
        self.removals.clear();
        (&mut self.dom, &mut self.assigned, &mut self.ull_used, &mut self.removals)
    }

    /// Approximate heap bytes currently held (capacity, not length).
    pub fn memory_bytes(&self) -> usize {
        self.mapping.capacity() * 4
            + self.used.capacity()
            + self.dom.capacity() * 8
            + self.assigned.capacity() * 4
            + self.ull_used.capacity()
            + self.removals.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn profile_shapes() {
        let t = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let p = GraphProfile::new(&t, None);
        assert_eq!(p.summary.n, 3);
        assert_eq!(p.sig.len(), 3);
        assert_eq!(p.order.len(), 3);
        let tp = GraphProfile::target_only(&t);
        assert!(tp.order.is_empty());
        assert_eq!(tp.sig, p.sig);
        assert_eq!(tp.summary, p.summary);
    }

    #[test]
    fn signature_domination_is_necessary() {
        // Center of a star has 3 neighbours with label 0; a path midpoint has
        // only 2 — the star centre's signature cannot be dominated by it.
        let star = g(&[1, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = g(&[1, 0, 0], &[(0, 1), (0, 2)]);
        let s = signatures(&star);
        let p = signatures(&path);
        assert!(!sig_dominates(p[0], s[0]));
        assert!(sig_dominates(s[0], p[0]));
    }

    #[test]
    fn scratch_buffers_reset_between_sizes() {
        let mut s = VfScratch::new();
        {
            let (m, u) = s.vf2_buffers(3, 5);
            m[0] = 7;
            u[4] = true;
        }
        let (m, u) = s.vf2_buffers(2, 4);
        assert_eq!(m, &[UNMAPPED, UNMAPPED]);
        assert_eq!(u, &[false; 4]);
        // Growing again re-initializes the full range.
        let (m, _) = s.vf2_buffers(5, 8);
        assert!(m.iter().all(|&x| x == UNMAPPED));
    }

    #[test]
    fn scratch_memory_reports_capacity() {
        let mut s = VfScratch::new();
        assert_eq!(s.memory_bytes(), 0);
        s.vf2_buffers(4, 9);
        s.ullmann_buffers(4, 9, 1);
        assert!(s.memory_bytes() > 0);
    }
}
