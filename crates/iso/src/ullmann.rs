//! Ullmann's subgraph-isomorphism algorithm with bitset domains.
//!
//! Kept as an independently-implemented baseline: the test suite cross-checks
//! it against [`crate::vf2`] on randomized inputs, and the benches compare
//! their verify latency (the classic "SI algorithms" axis of the paper's
//! related work).

use crate::{Found, SearchStats};
use gc_graph::invariants::GraphSummary;
use gc_graph::{Graph, VertexId};

/// Per-pattern-vertex candidate domain, one bit per target vertex.
#[derive(Clone)]
struct Domains {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Domains {
    fn new(pn: usize, tn: usize) -> Self {
        let words_per_row = tn.div_ceil(64);
        Domains { words_per_row, bits: vec![0; pn * words_per_row] }
    }

    #[inline]
    fn row(&self, u: usize) -> &[u64] {
        &self.bits[u * self.words_per_row..(u + 1) * self.words_per_row]
    }

    #[inline]
    fn row_mut(&mut self, u: usize) -> &mut [u64] {
        &mut self.bits[u * self.words_per_row..(u + 1) * self.words_per_row]
    }

    #[inline]
    fn set(&mut self, u: usize, v: usize) {
        self.row_mut(u)[v / 64] |= 1u64 << (v % 64);
    }

    #[inline]
    fn clear_bit(&mut self, u: usize, v: usize) {
        self.row_mut(u)[v / 64] &= !(1u64 << (v % 64));
    }

    fn count(&self, u: usize) -> u32 {
        self.row(u).iter().map(|w| w.count_ones()).sum()
    }

    fn is_empty_row(&self, u: usize) -> bool {
        self.row(u).iter().all(|&w| w == 0)
    }

    fn iter_row(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(u).iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

struct Search<'a> {
    p: &'a Graph,
    t: &'a Graph,
    assigned: Vec<Option<VertexId>>,
    used: Vec<bool>,
    steps: u64,
    budget: u64,
}

impl Search<'_> {
    /// Ullmann refinement: remove v from dom(u) when some neighbour u' of u
    /// has no candidate adjacent to v. Iterate to fixpoint. Returns false if
    /// a domain wiped out.
    fn refine(&mut self, dom: &mut Domains) -> bool {
        let pn = self.p.vertex_count();
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..pn {
                if self.assigned[u].is_some() {
                    continue;
                }
                // Collect removals first to avoid aliasing dom while scanning.
                let mut removals: Vec<usize> = Vec::new();
                for v in dom.iter_row(u) {
                    let ok = self.p.neighbors(u as VertexId).iter().all(|&w| {
                        match self.assigned[w as usize] {
                            Some(img) => self.t.has_edge(v as VertexId, img),
                            None => dom
                                .iter_row(w as usize)
                                .any(|cand| self.t.has_edge(v as VertexId, cand as VertexId)),
                        }
                    });
                    if !ok {
                        removals.push(v);
                    }
                }
                for v in removals.drain(..) {
                    dom.clear_bit(u, v);
                    changed = true;
                }
                if dom.is_empty_row(u) {
                    return false;
                }
            }
        }
        true
    }

    fn search(&mut self, dom: &Domains, depth: usize) -> Result<bool, ()> {
        let pn = self.p.vertex_count();
        if depth == pn {
            return Ok(true);
        }
        // Most-constrained-variable: unassigned pattern vertex with the
        // smallest domain.
        let u = (0..pn)
            .filter(|&u| self.assigned[u].is_none())
            .min_by_key(|&u| dom.count(u))
            .expect("depth < pn implies an unassigned vertex");

        let candidates: Vec<usize> = dom.iter_row(u).collect();
        for v in candidates {
            self.steps += 1;
            if self.steps > self.budget {
                return Err(());
            }
            if self.used[v] {
                continue;
            }
            self.assigned[u] = Some(v as VertexId);
            self.used[v] = true;

            let mut next = dom.clone();
            // v is taken: remove from all other rows; fix u's row to {v}.
            for w in 0..pn {
                if w != u {
                    next.clear_bit(w, v);
                }
            }
            for x in next.iter_row(u).collect::<Vec<_>>() {
                if x != v {
                    next.clear_bit(u, x);
                }
            }

            let feasible = self.refine(&mut next);
            if feasible {
                match self.search(&next, depth + 1) {
                    Ok(true) => {
                        self.assigned[u] = None;
                        self.used[v] = false;
                        return Ok(true);
                    }
                    Ok(false) => {}
                    Err(()) => {
                        self.assigned[u] = None;
                        self.used[v] = false;
                        return Err(());
                    }
                }
            }
            self.assigned[u] = None;
            self.used[v] = false;
        }
        Ok(false)
    }
}

/// Existence test with an optional step budget.
pub fn exists_budgeted(pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found {
    if pattern.vertex_count() == 0 {
        return Found::Yes;
    }
    if !GraphSummary::of(pattern).may_embed_into(&GraphSummary::of(target)) {
        return Found::No;
    }
    let pn = pattern.vertex_count();
    let tn = target.vertex_count();
    let mut dom = Domains::new(pn, tn);
    for u in 0..pn {
        for v in 0..tn {
            if pattern.label(u as VertexId) == target.label(v as VertexId)
                && target.degree(v as VertexId) >= pattern.degree(u as VertexId)
            {
                dom.set(u, v);
            }
        }
        if dom.is_empty_row(u) {
            return Found::No;
        }
    }
    let mut search = Search {
        p: pattern,
        t: target,
        assigned: vec![None; pn],
        used: vec![false; tn],
        steps: 0,
        budget: budget.unwrap_or(u64::MAX),
    };
    if !search.refine(&mut dom) {
        return Found::No;
    }
    match search.search(&dom, 0) {
        Ok(true) => Found::Yes,
        Ok(false) => Found::No,
        Err(()) => Found::Unknown,
    }
}

/// Unbudgeted existence test.
pub fn exists(pattern: &Graph, target: &Graph) -> bool {
    exists_budgeted(pattern, target, None).is_yes()
}

/// Existence test reporting step statistics.
pub fn exists_with_stats(
    pattern: &Graph,
    target: &Graph,
    budget: Option<u64>,
) -> (Found, SearchStats) {
    // The Search struct is internal; re-run bookkeeping here to keep the
    // public surface minimal.
    if pattern.vertex_count() == 0 {
        return (Found::Yes, SearchStats { steps: 0, embeddings: 1 });
    }
    if !GraphSummary::of(pattern).may_embed_into(&GraphSummary::of(target)) {
        return (Found::No, SearchStats::default());
    }
    let pn = pattern.vertex_count();
    let tn = target.vertex_count();
    let mut dom = Domains::new(pn, tn);
    for u in 0..pn {
        for v in 0..tn {
            if pattern.label(u as VertexId) == target.label(v as VertexId)
                && target.degree(v as VertexId) >= pattern.degree(u as VertexId)
            {
                dom.set(u, v);
            }
        }
        if dom.is_empty_row(u) {
            return (Found::No, SearchStats::default());
        }
    }
    let mut search = Search {
        p: pattern,
        t: target,
        assigned: vec![None; pn],
        used: vec![false; tn],
        steps: 0,
        budget: budget.unwrap_or(u64::MAX),
    };
    if !search.refine(&mut dom) {
        return (Found::No, SearchStats::default());
    }
    let out = match search.search(&dom, 0) {
        Ok(true) => Found::Yes,
        Ok(false) => Found::No,
        Err(()) => Found::Unknown,
    };
    let emb = u64::from(out == Found::Yes);
    (out, SearchStats { steps: search.steps, embeddings: emb })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn triangle_in_k4_not_in_tree() {
        let tri = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let tree = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert!(exists(&tri, &k4));
        assert!(!exists(&tri, &tree));
    }

    #[test]
    fn labels_respected() {
        let p = g(&[1, 2], &[(0, 1)]);
        assert!(exists(&p, &g(&[2, 1, 3], &[(0, 1), (1, 2)])));
        assert!(!exists(&p, &g(&[1, 1, 3], &[(0, 1), (1, 2)])));
    }

    #[test]
    fn self_containment_and_empty() {
        let x = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert!(exists(&x, &x));
        assert!(exists(&g(&[], &[]), &x));
    }

    #[test]
    fn disconnected_pattern_injective() {
        let p2 = g(&[0, 0], &[]);
        assert!(!exists(&p2, &g(&[0, 1], &[])));
        assert!(exists(&p2, &g(&[0, 0], &[])));
    }

    #[test]
    fn budget_unknown() {
        let p = g(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 9], &edges);
        assert_eq!(exists_budgeted(&p, &t, Some(1)), Found::Unknown);
        assert_eq!(exists_budgeted(&p, &t, None), Found::Yes);
    }

    #[test]
    fn agrees_with_vf2_on_small_cases() {
        let cases = [
            (g(&[0, 0, 0], &[(0, 1), (1, 2)]), g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])),
            (g(&[0, 1], &[(0, 1)]), g(&[1, 0, 1], &[(0, 1), (1, 2)])),
            (g(&[3], &[]), g(&[0, 1, 2], &[(0, 1)])),
            (
                g(&[0, 0, 1, 1], &[(0, 2), (1, 3), (2, 3)]),
                g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            ),
        ];
        for (p, t) in &cases {
            assert_eq!(exists(p, t), crate::vf2::exists(p, t), "p={p:?} t={t:?}");
        }
    }
}
