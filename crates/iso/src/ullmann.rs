//! Ullmann's subgraph-isomorphism algorithm with bitset domains.
//!
//! Kept as an independently-implemented baseline: the test suite cross-checks
//! it against [`crate::vf2`] on randomized inputs, and the benches compare
//! their verify latency (the classic "SI algorithms" axis of the paper's
//! related work).
//!
//! Like [`crate::vf2`], the engine has a hot-path entry — [`embeds_with`]
//! over a precomputed [`VerifyCtx`] and reusable [`VfScratch`] — and
//! from-scratch wrappers. Candidate domains live as *levelled* bitsets in
//! the scratch: level `d` of the flat domain buffer holds the refined
//! domains at search depth `d`, so descending copies level `d` to `d + 1`
//! instead of cloning a fresh allocation per recursion step. Initial domains
//! apply the same label / degree / neighbour-signature filters as VF2, so
//! engine cross-checks compare search strategy, not setup quality.

use crate::profile::{sig_dominates, GraphProfile, VerifyCtx, VfScratch, UNMAPPED};
use crate::{Found, SearchStats};
use gc_graph::{Graph, VertexId};

/// `true` iff some candidate in domain `row` (of one level slice) is a
/// target-neighbour of `v`.
fn row_has_neighbor(t: &Graph, dom: &[u64], words: usize, row: usize, v: VertexId) -> bool {
    let base = row * words;
    for wi in 0..words {
        let mut w = dom[base + wi];
        while w != 0 {
            let c = (wi * 64 + w.trailing_zeros() as usize) as VertexId;
            w &= w - 1;
            if t.has_edge(v, c) {
                return true;
            }
        }
    }
    false
}

/// Ullmann refinement over one level's domains: remove `v` from `dom(u)`
/// when some neighbour `u'` of `u` has no candidate adjacent to `v`. Iterate
/// to fixpoint. Returns `false` if a domain wiped out. `removals` is a
/// reused spill buffer (cleared here).
fn refine(
    p: &Graph,
    t: &Graph,
    words: usize,
    dom: &mut [u64],
    assigned: &[u32],
    removals: &mut Vec<u32>,
) -> bool {
    let pn = p.vertex_count();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..pn {
            if assigned[u] != UNMAPPED {
                continue;
            }
            // Collect removals first to avoid aliasing dom while scanning.
            removals.clear();
            let base = u * words;
            for wi in 0..words {
                let mut w = dom[base + wi];
                while w != 0 {
                    let v = (wi * 64 + w.trailing_zeros() as usize) as VertexId;
                    w &= w - 1;
                    let mut ok = true;
                    for &nb in p.neighbors(u as VertexId) {
                        let img = assigned[nb as usize];
                        let supported = if img != UNMAPPED {
                            t.has_edge(v, img)
                        } else {
                            row_has_neighbor(t, dom, words, nb as usize, v)
                        };
                        if !supported {
                            ok = false;
                            break;
                        }
                    }
                    if !ok {
                        removals.push(v);
                    }
                }
            }
            for &v in removals.iter() {
                dom[base + (v as usize) / 64] &= !(1u64 << (v % 64));
                changed = true;
            }
            if dom[base..base + words].iter().all(|&w| w == 0) {
                return false;
            }
        }
    }
    true
}

struct Search<'a> {
    p: &'a Graph,
    t: &'a Graph,
    /// Bitset words per domain row.
    words: usize,
    /// Words per level (`pn * words`).
    level: usize,
    /// Levelled domains: `(pn + 1) * level` words.
    dom: &'a mut [u64],
    /// pattern vertex -> target vertex (UNMAPPED if free).
    assigned: &'a mut [u32],
    used: &'a mut [bool],
    removals: &'a mut Vec<u32>,
    steps: u64,
    budget: u64,
}

impl Search<'_> {
    fn search(&mut self, depth: usize) -> Result<bool, ()> {
        let pn = self.p.vertex_count();
        if depth == pn {
            return Ok(true);
        }
        let cur = depth * self.level;
        // Most-constrained-variable: unassigned pattern vertex with the
        // smallest domain (first on ties).
        let mut u = usize::MAX;
        let mut best = u32::MAX;
        for cand in 0..pn {
            if self.assigned[cand] != UNMAPPED {
                continue;
            }
            let base = cur + cand * self.words;
            let cnt: u32 = self.dom[base..base + self.words].iter().map(|w| w.count_ones()).sum();
            if cnt < best {
                best = cnt;
                u = cand;
            }
        }
        debug_assert_ne!(u, usize::MAX, "depth < pn implies an unassigned vertex");

        let next = cur + self.level;
        for wi in 0..self.words {
            // Word copied up front: this level's domains are not mutated at
            // this depth, so the copy is a faithful candidate snapshot.
            let mut w = self.dom[cur + u * self.words + wi];
            while w != 0 {
                let v = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                self.steps += 1;
                if self.steps > self.budget {
                    return Err(());
                }
                if self.used[v] {
                    continue;
                }
                self.assigned[u] = v as u32;
                self.used[v] = true;

                // next level := this level with v taken: removed from all
                // other rows, row u fixed to {v}.
                self.dom.copy_within(cur..cur + self.level, next);
                for other in 0..pn {
                    if other != u {
                        self.dom[next + other * self.words + v / 64] &= !(1u64 << (v % 64));
                    }
                }
                let urow = next + u * self.words;
                self.dom[urow..urow + self.words].fill(0);
                self.dom[urow + v / 64] |= 1u64 << (v % 64);

                let feasible = refine(
                    self.p,
                    self.t,
                    self.words,
                    &mut self.dom[next..next + self.level],
                    self.assigned,
                    self.removals,
                );
                if feasible {
                    match self.search(depth + 1) {
                        Ok(true) => {
                            self.assigned[u] = UNMAPPED;
                            self.used[v] = false;
                            return Ok(true);
                        }
                        Ok(false) => {}
                        Err(()) => {
                            self.assigned[u] = UNMAPPED;
                            self.used[v] = false;
                            return Err(());
                        }
                    }
                }
                self.assigned[u] = UNMAPPED;
                self.used[v] = false;
            }
        }
        Ok(false)
    }
}

/// Existence test over a precomputed [`VerifyCtx`] with a reusable
/// [`VfScratch`] — the verification hot path.
///
/// Decision-equivalent to [`exists_budgeted`]; allocation-free once the
/// scratch has grown to the largest candidate seen.
pub fn embeds_with(
    ctx: &VerifyCtx<'_>,
    budget: Option<u64>,
    scratch: &mut VfScratch,
) -> (Found, SearchStats) {
    let pn = ctx.pattern.vertex_count();
    if pn == 0 {
        return (Found::Yes, SearchStats { steps: 0, embeddings: 1 });
    }
    if !ctx.pattern_profile.summary.may_embed_into(ctx.target_profile.summary) {
        return (Found::No, SearchStats::default());
    }
    let tn = ctx.target.vertex_count();
    let words = tn.div_ceil(64);
    let (dom, assigned, used, removals) = scratch.ullmann_buffers(pn, tn, words);

    // Seed level 0: label equality, degree feasibility, signature domination.
    for u in 0..pn {
        let base = u * words;
        let lu = ctx.pattern.label(u as VertexId);
        let du = ctx.pattern.degree(u as VertexId);
        let su = ctx.pattern_profile.sig[u];
        let mut any = false;
        for v in 0..tn {
            if ctx.target.label(v as VertexId) == lu
                && ctx.target.degree(v as VertexId) >= du
                && sig_dominates(ctx.target_profile.sig[v], su)
            {
                dom[base + v / 64] |= 1u64 << (v % 64);
                any = true;
            }
        }
        if !any {
            return (Found::No, SearchStats::default());
        }
    }
    if !refine(ctx.pattern, ctx.target, words, &mut dom[..pn * words], assigned, removals) {
        return (Found::No, SearchStats::default());
    }
    let mut search = Search {
        p: ctx.pattern,
        t: ctx.target,
        words,
        level: pn * words,
        dom,
        assigned,
        used,
        removals,
        steps: 0,
        budget: budget.unwrap_or(u64::MAX),
    };
    let out = match search.search(0) {
        Ok(true) => Found::Yes,
        Ok(false) => Found::No,
        Err(()) => Found::Unknown,
    };
    (out, SearchStats { steps: search.steps, embeddings: u64::from(out == Found::Yes) })
}

/// Existence test with an optional step budget (from-scratch setup).
pub fn exists_budgeted(pattern: &Graph, target: &Graph, budget: Option<u64>) -> Found {
    exists_with_stats(pattern, target, budget).0
}

/// Unbudgeted existence test.
pub fn exists(pattern: &Graph, target: &Graph) -> bool {
    exists_budgeted(pattern, target, None).is_yes()
}

/// Existence test reporting step statistics (from-scratch setup: builds
/// throwaway profiles and scratch, then delegates to [`embeds_with`]).
pub fn exists_with_stats(
    pattern: &Graph,
    target: &Graph,
    budget: Option<u64>,
) -> (Found, SearchStats) {
    let pp = GraphProfile::target_only(pattern); // Ullmann needs no order
    let tp = GraphProfile::target_only(target);
    let ctx =
        VerifyCtx { pattern, pattern_profile: pp.as_ref(), target, target_profile: tp.as_ref() };
    embeds_with(&ctx, budget, &mut VfScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn triangle_in_k4_not_in_tree() {
        let tri = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let k4 = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let tree = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert!(exists(&tri, &k4));
        assert!(!exists(&tri, &tree));
    }

    #[test]
    fn labels_respected() {
        let p = g(&[1, 2], &[(0, 1)]);
        assert!(exists(&p, &g(&[2, 1, 3], &[(0, 1), (1, 2)])));
        assert!(!exists(&p, &g(&[1, 1, 3], &[(0, 1), (1, 2)])));
    }

    #[test]
    fn self_containment_and_empty() {
        let x = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert!(exists(&x, &x));
        assert!(exists(&g(&[], &[]), &x));
    }

    #[test]
    fn disconnected_pattern_injective() {
        let p2 = g(&[0, 0], &[]);
        assert!(!exists(&p2, &g(&[0, 1], &[])));
        assert!(exists(&p2, &g(&[0, 0], &[])));
    }

    #[test]
    fn budget_unknown() {
        let p = g(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 9], &edges);
        assert_eq!(exists_budgeted(&p, &t, Some(1)), Found::Unknown);
        assert_eq!(exists_budgeted(&p, &t, None), Found::Yes);
    }

    #[test]
    fn agrees_with_vf2_on_small_cases() {
        let cases = [
            (g(&[0, 0, 0], &[(0, 1), (1, 2)]), g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])),
            (g(&[0, 1], &[(0, 1)]), g(&[1, 0, 1], &[(0, 1), (1, 2)])),
            (g(&[3], &[]), g(&[0, 1, 2], &[(0, 1)])),
            (
                g(&[0, 0, 1, 1], &[(0, 2), (1, 3), (2, 3)]),
                g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            ),
        ];
        for (p, t) in &cases {
            assert_eq!(exists(p, t), crate::vf2::exists(p, t), "p={p:?} t={t:?}");
        }
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        // Alternate large and small candidates through one scratch; the
        // domain buffer must re-seed correctly every time.
        let big = g(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let small = g(&[0, 0], &[(0, 1)]);
        let targets = [big.clone(), small.clone(), big.clone(), small];
        let pp = GraphProfile::target_only(&g(&[0, 0, 0], &[(0, 1), (1, 2)]));
        let p = g(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let mut scratch = VfScratch::new();
        for t in &targets {
            let tp = GraphProfile::target_only(t);
            let ctx = VerifyCtx {
                pattern: &p,
                pattern_profile: pp.as_ref(),
                target: t,
                target_profile: tp.as_ref(),
            };
            let (found, _) = embeds_with(&ctx, None, &mut scratch);
            assert_eq!(found.is_yes(), exists(&p, t));
        }
    }
}
