//! Connectivity-driven search order for backtracking matchers.

use gc_graph::{Graph, VertexId};

/// Compute a pattern-vertex visit order for backtracking search.
///
/// Properties:
/// * the first vertex of each connected component maximises
///   (label rarity, degree) — rare, highly-connected vertices fail fast;
/// * every later vertex within a component is adjacent to an already-ordered
///   vertex, so candidate sets can be generated from matched neighbours
///   instead of scanning the whole target;
/// * `label_freq`, when given, holds the label frequencies *of the target*
///   (index = label), steering the start vertex towards globally rare labels.
pub fn search_order(pattern: &Graph, label_freq: Option<&[u32]>) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    let mut order = Vec::with_capacity(n);
    if n == 0 {
        return order;
    }

    let freq_of = |v: VertexId| -> u64 {
        let l = pattern.label(v).0 as usize;
        match label_freq {
            Some(f) => f.get(l).copied().unwrap_or(0) as u64,
            // Without target stats, approximate rarity by the pattern's own
            // label histogram (computed lazily below).
            None => 0,
        }
    };
    let own_hist = pattern.label_histogram();
    let own_freq = |v: VertexId| own_hist[pattern.label(v).0 as usize] as u64;

    let mut placed = vec![false; n];
    // connections[v] = number of already-ordered neighbours of v.
    let mut connections = vec![0u32; n];

    for _ in 0..n {
        // Select the best next vertex: prefer connected-to-placed, then rare
        // label, then high degree, then low id for determinism.
        let mut best: Option<VertexId> = None;
        for v in pattern.vertices() {
            if placed[v as usize] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let key = |u: VertexId| {
                        (
                            connections[u as usize],        // more connections first
                            std::cmp::Reverse(freq_of(u)),  // rarer target label first
                            std::cmp::Reverse(own_freq(u)), // rarer pattern label first
                            pattern.degree(u) as u32,       // higher degree first
                            std::cmp::Reverse(u),           // lower id first
                        )
                    };
                    key(v) > key(b)
                }
            };
            if better {
                best = Some(v);
            }
        }
        let v = best.expect("at least one unplaced vertex remains");
        placed[v as usize] = true;
        order.push(v);
        for &w in pattern.neighbors(v) {
            if !placed[w as usize] {
                connections[w as usize] += 1;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    #[test]
    fn order_is_permutation() {
        let g =
            graph_from_parts(&[Label(0), Label(1), Label(0), Label(2)], &[(0, 1), (1, 2), (2, 3)])
                .unwrap();
        let mut o = search_order(&g, None);
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn connected_prefix_property() {
        // In a connected pattern, every vertex after the first must touch an
        // earlier one.
        let g = graph_from_parts(&[Label(0); 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
            .unwrap();
        let o = search_order(&g, None);
        for (i, &v) in o.iter().enumerate().skip(1) {
            let touches = g.neighbors(v).iter().any(|w| o[..i].contains(w));
            assert!(touches, "vertex {v} at position {i} not connected to prefix");
        }
    }

    #[test]
    fn rare_target_label_goes_first() {
        // Vertex 2 has label 9 which is rare in the target stats.
        let g = graph_from_parts(&[Label(0), Label(0), Label(9)], &[(0, 1), (1, 2)]).unwrap();
        let mut freq = vec![1000u32; 10];
        freq[9] = 1;
        let o = search_order(&g, Some(&freq));
        assert_eq!(o[0], 2);
    }

    #[test]
    fn empty_and_singleton() {
        let e = graph_from_parts(&[], &[]).unwrap();
        assert!(search_order(&e, None).is_empty());
        let s = graph_from_parts(&[Label(3)], &[]).unwrap();
        assert_eq!(search_order(&s, None), vec![0]);
    }

    #[test]
    fn disconnected_pattern_covers_all_components() {
        let g = graph_from_parts(&[Label(0), Label(0), Label(1)], &[(0, 1)]).unwrap();
        let mut o = search_order(&g, None);
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2]);
    }
}
