//! Exact graph-isomorphism testing (for exact-match cache hits).
//!
//! GraphCache detects exact-match hits by WL fingerprint (see
//! [`gc_graph::hash`]) and confirms with this test, so fingerprint collisions
//! can never produce a wrong answer.
//!
//! For graphs with equal vertex and edge counts, a label-preserving
//! *non-induced* embedding is automatically bijective and edge-surjective,
//! hence an isomorphism — so the check reduces to one sub-iso test after the
//! cheap cardinality comparisons.

use crate::vf2;
use gc_graph::Graph;

/// `true` iff `a` and `b` are isomorphic labelled graphs.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.label_histogram() != b.label_histogram() {
        return false;
    }
    // Equal n and m: any embedding a -> b is a bijection mapping all m edges
    // of a onto distinct edges of b, i.e. onto all of b's edges.
    vf2::exists(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn permuted_graphs_are_isomorphic() {
        let a = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = g(&[2, 1, 0], &[(0, 1), (1, 2)]); // reversed path
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn structure_mismatch() {
        let path = g(&[0; 4], &[(0, 1), (1, 2), (2, 3)]);
        let star = g(&[0; 4], &[(0, 1), (0, 2), (0, 3)]);
        assert!(!are_isomorphic(&path, &star));
    }

    #[test]
    fn label_mismatch() {
        let a = g(&[0, 1], &[(0, 1)]);
        let b = g(&[0, 2], &[(0, 1)]);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn size_mismatch() {
        let a = g(&[0, 0], &[(0, 1)]);
        let b = g(&[0, 0, 0], &[(0, 1), (1, 2)]);
        assert!(!are_isomorphic(&a, &b));
        // proper subgraph with same n but fewer edges
        let c = g(&[0, 0, 0], &[(0, 1)]);
        assert!(!are_isomorphic(&b, &c));
    }

    #[test]
    fn reflexive_and_empty() {
        let a = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        assert!(are_isomorphic(&a, &a));
        let e = g(&[], &[]);
        assert!(are_isomorphic(&e, &e));
    }
}
