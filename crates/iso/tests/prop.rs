//! Property-based cross-checks of the isomorphism engines.
//!
//! A brute-force reference matcher (explicit enumeration of injective
//! mappings) anchors correctness; VF2 and Ullmann must agree with it on
//! arbitrary small labelled graphs, and with each other.

use gc_graph::{graph_from_parts, Graph, Label};
use proptest::prelude::*;

/// Brute-force non-induced labelled sub-iso by recursion over pattern
/// vertices in id order. Exponential; only for tiny graphs.
fn brute_force_exists(p: &Graph, t: &Graph) -> bool {
    fn rec(p: &Graph, t: &Graph, depth: u32, mapping: &mut Vec<u32>, used: &mut Vec<bool>) -> bool {
        if depth as usize == p.vertex_count() {
            return true;
        }
        for v in t.vertices() {
            if used[v as usize] || p.label(depth) != t.label(v) {
                continue;
            }
            let ok = p.neighbors(depth).iter().all(|&w| {
                if w < depth {
                    t.has_edge(v, mapping[w as usize])
                } else {
                    true
                }
            });
            if !ok {
                continue;
            }
            mapping.push(v);
            used[v as usize] = true;
            if rec(p, t, depth + 1, mapping, used) {
                mapping.pop();
                used[v as usize] = false;
                return true;
            }
            mapping.pop();
            used[v as usize] = false;
        }
        false
    }
    rec(p, t, 0, &mut Vec::new(), &mut vec![false; t.vertex_count()])
}

/// Strategy: a random labelled graph with up to `max_n` vertices.
fn arb_graph(max_n: usize, max_label: u32) -> impl Strategy<Value = Graph> {
    (0..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..=max_label, n);
        let edges = if n >= 2 {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * (n - 1) / 2)).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (labels, edges).prop_map(move |(ls, es)| {
            let labels: Vec<Label> = ls.into_iter().map(Label).collect();
            let mut b = gc_graph::GraphBuilder::new();
            for l in &labels {
                b.add_vertex(*l);
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vf2_matches_brute_force(
        p in arb_graph(4, 2),
        t in arb_graph(6, 2),
    ) {
        prop_assert_eq!(gc_iso::vf2::exists(&p, &t), brute_force_exists(&p, &t));
    }

    #[test]
    fn ullmann_matches_brute_force(
        p in arb_graph(4, 2),
        t in arb_graph(6, 2),
    ) {
        prop_assert_eq!(gc_iso::ullmann::exists(&p, &t), brute_force_exists(&p, &t));
    }

    #[test]
    fn vf2_and_ullmann_agree(
        p in arb_graph(5, 3),
        t in arb_graph(7, 3),
    ) {
        prop_assert_eq!(gc_iso::vf2::exists(&p, &t), gc_iso::ullmann::exists(&p, &t));
    }

    #[test]
    fn every_graph_contains_itself(g in arb_graph(6, 3)) {
        prop_assert!(gc_iso::vf2::exists(&g, &g));
        prop_assert!(gc_iso::ullmann::exists(&g, &g));
    }

    #[test]
    fn extracted_subgraph_embeds(
        t in arb_graph(7, 3),
        keep_bits in proptest::collection::vec(any::<bool>(), 7),
        drop_edge_bits in proptest::collection::vec(any::<bool>(), 32),
    ) {
        // Take a vertex subset of t, keep a subset of the induced edges.
        let kept: Vec<u32> = t.vertices().filter(|&v| keep_bits[v as usize]).collect();
        let mut remap = vec![u32::MAX; t.vertex_count()];
        for (i, &v) in kept.iter().enumerate() {
            remap[v as usize] = i as u32;
        }
        let labels: Vec<Label> = kept.iter().map(|&v| t.label(v)).collect();
        let mut edges = Vec::new();
        for (i, (u, v)) in t.edges().enumerate() {
            if remap[u as usize] != u32::MAX
                && remap[v as usize] != u32::MAX
                && drop_edge_bits.get(i).copied().unwrap_or(false)
            {
                edges.push((remap[u as usize], remap[v as usize]));
            }
        }
        let p = graph_from_parts(&labels, &edges).unwrap();
        prop_assert!(gc_iso::vf2::exists(&p, &t));
        prop_assert!(gc_iso::ullmann::exists(&p, &t));
    }

    #[test]
    fn containment_invariants_are_sound(
        p in arb_graph(4, 2),
        t in arb_graph(6, 2),
    ) {
        // may_embed must never reject a true containment.
        if gc_iso::vf2::exists(&p, &t) {
            prop_assert!(gc_graph::invariants::may_embed(&p, &t));
        }
    }

    #[test]
    fn isomorphic_permutations_detected(
        t in arb_graph(6, 3),
        seed in any::<u64>(),
    ) {
        // Build a random permutation of t and check isomorphism + fingerprint.
        let n = t.vertex_count();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        // Fisher-Yates with a simple LCG (deterministic per seed).
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut labels = vec![Label(0); n];
        for v in 0..n {
            labels[perm[v] as usize] = t.label(v as u32);
        }
        let edges: Vec<(u32, u32)> = t
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        let t2 = graph_from_parts(&labels, &edges).unwrap();
        prop_assert!(gc_iso::iso::are_isomorphic(&t, &t2));
        prop_assert_eq!(gc_graph::hash::fingerprint(&t), gc_graph::hash::fingerprint(&t2));
    }

    #[test]
    fn embedding_count_positive_iff_exists(
        p in arb_graph(4, 2),
        t in arb_graph(5, 2),
    ) {
        let (count, _) = gc_iso::vf2::count_embeddings(&p, &t, None);
        prop_assert_eq!(count > 0, gc_iso::vf2::exists(&p, &t));
    }

    #[test]
    fn adding_pattern_edge_cannot_create_containment(
        t in arb_graph(6, 2),
        p in arb_graph(4, 2),
        extra in (0u32..4, 0u32..4),
    ) {
        // If p (with an extra edge) embeds, then p embeds: monotonicity.
        let (a, b) = extra;
        if a != b && (a as usize) < p.vertex_count() && (b as usize) < p.vertex_count() && !p.has_edge(a, b) {
            let labels: Vec<Label> = p.labels().to_vec();
            let mut edges: Vec<(u32, u32)> = p.edges().collect();
            edges.push((a.min(b), a.max(b)));
            let p_plus = graph_from_parts(&labels, &edges).unwrap();
            if gc_iso::vf2::exists(&p_plus, &t) {
                prop_assert!(gc_iso::vf2::exists(&p, &t));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn profiled_path_matches_from_scratch_both_engines_both_sides(
        a in arb_graph(4, 2),
        b in arb_graph(6, 2),
    ) {
        // One scratch shared by every test in this case — differently-sized
        // candidates, both directions, both engines — mirroring how the
        // cache's verify loop reuses it.
        let mut scratch = gc_iso::VfScratch::new();
        for (p, t) in [(&a, &b), (&b, &a)] {
            let pp = gc_iso::GraphProfile::new(p, Some(&t.label_histogram()));
            let tp = gc_iso::GraphProfile::target_only(t);
            let ctx = gc_iso::VerifyCtx::from_profiles(p, &pp, t, &tp);
            let (vf2_found, _) = gc_iso::vf2::embeds_with(&ctx, None, &mut scratch);
            prop_assert_eq!(vf2_found.is_yes(), gc_iso::vf2::exists(p, t));
            let (ull_found, _) = gc_iso::ullmann::embeds_with(&ctx, None, &mut scratch);
            prop_assert_eq!(ull_found.is_yes(), gc_iso::ullmann::exists(p, t));
            // A profile whose search order ignores target statistics must
            // not change the decision either (only the step count may move).
            let pp_blind = gc_iso::GraphProfile::new(p, None);
            let ctx_blind = gc_iso::VerifyCtx::from_profiles(p, &pp_blind, t, &tp);
            let (blind_found, _) = gc_iso::vf2::embeds_with(&ctx_blind, None, &mut scratch);
            prop_assert_eq!(blind_found.is_yes(), vf2_found.is_yes());
        }
    }

    #[test]
    fn signature_pruning_never_changes_answers(
        p in arb_graph(5, 3),
        t in arb_graph(7, 3),
    ) {
        let on = gc_iso::vf2::enumerate_with_options(
            &p, &t, None, gc_iso::vf2::Options { neighbor_signatures: true },
            &mut |_| gc_iso::vf2::Control::Stop,
        ).0;
        let off = gc_iso::vf2::enumerate_with_options(
            &p, &t, None, gc_iso::vf2::Options { neighbor_signatures: false },
            &mut |_| gc_iso::vf2::Control::Stop,
        ).0;
        prop_assert_eq!(on, off);
    }

    #[test]
    fn signature_pruning_never_increases_steps(
        p in arb_graph(5, 3),
        t in arb_graph(8, 3),
    ) {
        let (_, on) = gc_iso::vf2::enumerate_with_options(
            &p, &t, None, gc_iso::vf2::Options { neighbor_signatures: true },
            &mut |_| gc_iso::vf2::Control::Stop,
        );
        let (_, off) = gc_iso::vf2::enumerate_with_options(
            &p, &t, None, gc_iso::vf2::Options { neighbor_signatures: false },
            &mut |_| gc_iso::vf2::Control::Stop,
        );
        prop_assert!(on.steps <= off.steps, "{} > {}", on.steps, off.steps);
    }
}
