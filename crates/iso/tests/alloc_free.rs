//! Proof that the profiled verification hot path is allocation-free.
//!
//! A counting global allocator tracks allocations **per thread** (other test
//! threads in the same binary must not pollute the count). After one warm-up
//! pass grows every scratch buffer to its high-water mark, a second pass
//! over the same candidates must perform zero allocations — for both
//! engines, both directions, and budgeted probes.
//!
//! This is an integration test (its own binary) so the `#[global_allocator]`
//! cannot interfere with the library's unit tests, and so the crate-level
//! `#![forbid(unsafe_code)]` (which the allocator impl necessarily violates)
//! stays intact for the library itself.

use gc_iso::{GraphProfile, VerifyCtx, VfScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump (Cell<u64> is const-initialized and has no
// destructor, so touching it from the allocator cannot recurse or allocate).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn graph(labels: &[u32], edges: &[(u32, u32)]) -> gc_graph::Graph {
    let ls: Vec<gc_graph::Label> = labels.iter().map(|&l| gc_graph::Label(l)).collect();
    gc_graph::graph_from_parts(&ls, edges).unwrap()
}

/// A small synthetic "dataset" of mixed sizes plus a pattern, with all
/// profiles precomputed — everything the hot loop is allowed to touch.
struct Fixture {
    pattern: gc_graph::Graph,
    pattern_profile: GraphProfile,
    targets: Vec<gc_graph::Graph>,
    target_profiles: Vec<GraphProfile>,
}

fn fixture() -> Fixture {
    let pattern = graph(&[0, 1, 0], &[(0, 1), (1, 2)]);
    let mut targets = vec![
        graph(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        graph(&[0, 1], &[(0, 1)]),
        graph(&[2, 2, 2], &[(0, 1), (1, 2)]),
    ];
    // A larger dense target so the search actually backtracks, and >64
    // vertices would be overkill for unit scale but ~70 vertices exercises
    // the multi-word Ullmann domain rows.
    let n = 70u32;
    let labels: Vec<u32> = (0..n).map(|v| v % 2).collect();
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    targets.push(graph(&labels, &edges));
    let pattern_profile = GraphProfile::new(&pattern, None);
    let target_profiles = targets.iter().map(GraphProfile::target_only).collect();
    Fixture { pattern, pattern_profile, targets, target_profiles }
}

fn sweep(fx: &Fixture, scratch: &mut VfScratch, budget: Option<u64>) -> u64 {
    let mut total_steps = 0;
    for (t, tp) in fx.targets.iter().zip(&fx.target_profiles) {
        let ctx = VerifyCtx::from_profiles(&fx.pattern, &fx.pattern_profile, t, tp);
        let (_, vf2_stats) = gc_iso::vf2::embeds_with(&ctx, budget, scratch);
        let (_, ull_stats) = gc_iso::ullmann::embeds_with(&ctx, budget, scratch);
        total_steps += vf2_stats.steps + ull_stats.steps;
    }
    total_steps
}

#[test]
fn per_candidate_search_loop_is_allocation_free() {
    let fx = fixture();
    let mut scratch = VfScratch::new();

    // Warm-up: grows every scratch buffer to its high-water mark (and
    // faults in any lazy thread state).
    let warm_steps = sweep(&fx, &mut scratch, None);
    assert!(warm_steps > 0, "the sweep must do real search work");

    // Measured pass: identical work, zero allocations.
    let before = allocations_on_this_thread();
    let steps = sweep(&fx, &mut scratch, None);
    let budgeted_steps = sweep(&fx, &mut scratch, Some(3));
    let after = allocations_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "profiled verification allocated on the hot path ({steps} + {budgeted_steps} steps)"
    );
    assert_eq!(steps, warm_steps, "reused scratch must not change the search");
}

#[test]
fn scratch_growth_happens_only_at_the_high_water_mark() {
    let fx = fixture();
    let mut scratch = VfScratch::new();

    // Warm up on the *largest* target only; smaller candidates afterwards
    // must not allocate even on first sight.
    let largest = fx
        .targets
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.vertex_count())
        .map(|(i, _)| i)
        .unwrap();
    let ctx = VerifyCtx::from_profiles(
        &fx.pattern,
        &fx.pattern_profile,
        &fx.targets[largest],
        &fx.target_profiles[largest],
    );
    gc_iso::vf2::embeds_with(&ctx, None, &mut scratch);
    gc_iso::ullmann::embeds_with(&ctx, None, &mut scratch);

    let before = allocations_on_this_thread();
    sweep(&fx, &mut scratch, None);
    let after = allocations_on_this_thread();
    assert_eq!(after - before, 0, "smaller candidates must fit the warmed scratch");
}
