//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest's API its property tests use: [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`prelude::any`], [`prelude::Just`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberate for a zero-dependency shim:
//!
//! * **no shrinking** — a failing case reports its case number and seed, but
//!   is not minimized;
//! * **deterministic seeding** — each test function derives its RNG seed from
//!   its name, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random generator handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// `any::<T>()` support: uniform draws over a type's whole domain.
pub trait Arbitrary: Sized {
    /// Draw one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen::<u32>() & 0xFF) as u8
    }
}

/// Strategy wrapper returned by [`prelude::any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a stable 64-bit seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; any stable hash works — it only namespaces RNG streams.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::collection;
    pub use super::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Uniform strategy over a type's whole domain (subset of upstream's
    /// `any`).
    pub fn any<T: super::Arbitrary>() -> super::Any<T> {
        super::Any(std::marker::PhantomData)
    }
}

/// Assert a condition inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Property-test declaration macro (subset of upstream's `proptest!`).
///
/// Each declared test runs `config.cases` random cases with a seed derived
/// from the test's name; the case number is reported on panic via the
/// standard panic message location.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng: $crate::TestRng = <$crate::TestRng as $crate::rand::SeedableRng>::
                    seed_from_u64($crate::seed_for(stringify!($name)));
                for __case in 0..__cfg.cases {
                    let __run = |__rng: &mut $crate::TestRng| {
                        $(let $arg = ($strat).generate(__rng);)+
                        $body
                    };
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    );
                    if let Err(payload) = __result {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (no shrinking)",
                            stringify!($name), __case + 1, __cfg.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng: TestRng = rand::SeedableRng::seed_from_u64(1);
        let s = (1usize..=5).prop_flat_map(|n| collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let b = (0usize..3).boxed();
        assert!(b.generate(&mut rng) < 3);
        let j = Just(vec![1, 2]);
        assert_eq!(j.generate(&mut rng), vec![1, 2]);
        let t = (0u32..4, any::<bool>()).generate(&mut rng);
        assert!(t.0 < 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_works(x in 0usize..10, flips in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(flips.len() < 4);
            prop_assert_eq!(x, x);
        }
    }
}
