//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` shim's value-tree model, with a hand-rolled token parser
//! (no `syn`/`quote` available offline). Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields;
//! * newtype / tuple structs;
//! * enums with unit, struct and tuple variants (externally tagged, like
//!   upstream serde's default).
//!
//! Generics are intentionally unsupported; the derive panics with a clear
//! message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip leading attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // 'pub(crate)' etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the fields of a braced group: named fields `a: T, b: U, ...`.
/// Returns the field names in declaration order.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde shim derive: expected ':' after field {}", fields.last().unwrap()),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a parenthesised (tuple) group by top-level commas.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut saw_tokens_in_current = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens_in_current = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_in_current = true;
    }
    if !saw_tokens_in_current {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant and the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (deriving on {name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde shim derive: unsupported struct body for {name}: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde shim derive: expected enum body for {name}, got {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive on {other} {name}"),
    }
}

fn named_to_object(fields: &[String], access_prefix: &str) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields {
        out.push_str(&format!(
            "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value({access_prefix}{f}))); "
        ));
    }
    out.push_str("::serde::Value::Object(__fields) }");
    out
}

fn named_from_object(ty_or_variant: &str, fields: &[String], ctor: &str) -> String {
    let mut out = format!(
        "{{ let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\
         format!(\"expected object for {ty_or_variant}, got {{__v:?}}\")))?; Ok({ctor} {{ "
    );
    for f in fields {
        out.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::value::get_field(__obj, {f:?})\
             .ok_or_else(|| ::serde::DeError::new(\"missing field {ty_or_variant}.{f}\"))?)?, "
        ));
    }
    out.push_str("}) }");
    out
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Named(fields) => named_to_object(fields, "&self."),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                    )),
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let obj = named_to_object(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                             ({vn:?}.to_string(), {obj})]),"
                        ));
                    }
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![\
                         ({vn:?}.to_string(), ::serde::Serialize::to_value(__x0))]),"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
                Shape::Named(fields) => named_from_object(name, fields, name),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __items = __v.as_array().ok_or_else(|| ::serde::DeError::new(\
                         \"expected array for {name}\"))?; if __items.len() != {n} {{ \
                         return Err(::serde::DeError::new(\"wrong arity for {name}\")); }} \
                         Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),"));
                        // Also accept {"Variant": null} for symmetry.
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{ let _ = __payload; Ok({name}::{vn}) }},"
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = format!("{name}::{vn}");
                        let body = named_from_object(&format!("{name}::{vn}"), fields, &ctor);
                        tagged_arms
                            .push_str(&format!("{vn:?} => {{ let __v = __payload; {body} }},"));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{ let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {name}::{vn}\"))?; \
                             if __items.len() != {n} {{ return Err(::serde::DeError::new(\
                             \"wrong arity for {name}::{vn}\")); }} Ok({name}::{vn}({})) }},",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\
                 if let Some(__s) = __v.as_str() {{ match __s {{ {unit_arms} \
                 __other => return Err(::serde::DeError::new(format!(\
                 \"unknown variant {{__other}} of {name}\"))), }} }} \
                 let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\
                 format!(\"expected enum value for {name}, got {{__v:?}}\")))?; \
                 if __obj.len() != 1 {{ return Err(::serde::DeError::new(\
                 \"expected single-key enum object for {name}\")); }} \
                 let (__tag, __payload) = (&__obj[0].0, &__obj[0].1); \
                 match __tag.as_str() {{ {tagged_arms} \
                 __other => Err(::serde::DeError::new(format!(\
                 \"unknown variant {{__other}} of {name}\"))), }} }} }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated Deserialize impl must parse")
}
