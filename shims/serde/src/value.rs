//! The JSON-like value tree shared by the vendored `serde` and `serde_json`.

/// A self-describing value: the serialization data model.
///
/// Numbers keep their integer/float identity so `u64` fingerprints survive a
/// round trip bit-exactly (a plain `f64` model would corrupt values above
/// 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in an object's field list.
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}
