//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal self-describing serialization framework under serde's names:
//!
//! * [`Serialize`] — convert a value into a JSON-like [`value::Value`] tree;
//! * [`Deserialize`] — rebuild a value from such a tree;
//! * `#[derive(Serialize, Deserialize)]` — provided by the sibling
//!   `serde_derive` proc-macro crate and re-exported here, mirroring serde's
//!   `derive` feature.
//!
//! The data model matches what `serde_json` (also vendored) needs: structs
//! become objects, newtype structs are transparent, enums use external
//! tagging (`"Variant"` or `{"Variant": {...}}`), exactly like upstream
//! serde's default representation.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!("expected f64 got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("expected duration object"))?;
        let secs = u64::from_value(
            value::get_field(obj, "secs").ok_or_else(|| DeError::new("missing field secs"))?,
        )?;
        let nanos = u32::from_value(
            value::get_field(obj, "nanos").ok_or_else(|| DeError::new("missing field nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2u64);
        assert_eq!(<(u32, u64)>::from_value(&t.to_value()).unwrap(), t);
        assert_eq!(Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(), Some(7));
    }

    #[test]
    fn range_errors_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }
}
