//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rand` 0.8's API it uses: [`rngs::StdRng`] (here a deterministic
//! xoshiro256** generator seeded via SplitMix64), [`SeedableRng`] and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The stream differs from upstream `rand`'s `StdRng`, but everything in this
//! workspace only relies on *determinism per seed* and reasonable statistical
//! quality, both of which xoshiro256** provides.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the subset of
/// `rand`'s `Standard` distribution this workspace needs).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (the `rand::Rng` surface used by
/// this workspace).
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (the `seed_from_u64` surface this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream but is stable per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0 + 1e-9)));
    }

    #[test]
    fn reference_through_mut_works() {
        fn takes_rng(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r = &mut rng;
        assert!(takes_rng(r) < 10);
        assert!(takes_rng(&mut rng) < 10);
    }
}
