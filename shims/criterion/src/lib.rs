//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] with [`BenchmarkId`], `sample_size`,
//! `measurement_time`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up then timed batches until
//! the measurement budget is spent; reports mean ns/iter, min and max batch
//! means. No plots, no statistics beyond that — it is a smoke-and-trend
//! harness for an offline container, not a replacement for criterion's
//! analysis. Passing `--test` (as `cargo test` does for harness-less bench
//! targets) runs every closure once and skips measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` id, like criterion's.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher<'a> {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    result: &'a mut Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Measure `f` (its return value is black-boxed so work is not optimized
    /// away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one batch
        // takes ~1/20 of the budget (so we get ~sample_size batches) or at
        // least 1ms.
        let mut batch: u64 = 1;
        let target_batch = (self.measurement_time / 20).max(Duration::from_millis(1));
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target_batch || batch >= 1 << 30 {
                break;
            }
            let grow = if dt.is_zero() {
                8
            } else {
                (target_batch.as_nanos() / dt.as_nanos().max(1)).clamp(2, 8) as u64
            };
            batch = batch.saturating_mul(grow);
        }
        let deadline = Instant::now() + self.measurement_time;
        let mut batches: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        while Instant::now() < deadline || batches.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            batches.push(dt.as_nanos() as f64 / batch as f64);
            total_iters += batch;
            if batches.len() >= self.sample_size.max(10) * 4 {
                break;
            }
        }
        let mean = batches.iter().sum::<f64>() / batches.len() as f64;
        let min = batches.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = batches.iter().cloned().fold(0.0f64, f64::max);
        *self.result =
            Some(Measurement { mean_ns: mean, min_ns: min, max_ns: max, iters: total_iters });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement batches to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut result = None;
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: &mut result,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        match result {
            Some(m) => println!(
                "bench: {full:<50} {:>12.1} ns/iter (min {:.1}, max {:.1}, {} iters)",
                m.mean_ns, m.min_ns, m.max_ns, m.iters
            ),
            None => println!("bench: {full:<50} ok (test mode)"),
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher<'_>)) {
        self.run_one(id.into(), f);
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) {
        self.run_one(id.name, |b| f(b, input));
    }

    /// Finish the group (printing is immediate; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Declare a benchmark group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_run_and_report() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(5).measurement_time(Duration::from_millis(20));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }
}
