//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` shim's [`Value`] tree to JSON text and
//! parses it back: [`to_string`], [`to_string_pretty`], [`from_str`]. The
//! grammar is standard JSON; integers round-trip exactly (split into
//! `UInt`/`Int` in the value model), floats use Rust's shortest round-trip
//! formatting.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

// ---- writing ---------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // Keep the float/integer distinction in the text form so a
        // round-trip preserves Value::Float where it matters little but
        // costs nothing.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no inf/nan; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u <= i64::MAX as u64 {
                        return Ok(Value::Int(-(u as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(&format!("invalid number {text:?}")))
    }
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (v, text) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::UInt(18446744073709551615), "18446744073709551615"),
            (Value::Int(-42), "-42"),
            (Value::String("a\"b\\c\nd".into()), r#""a\"b\\c\nd""#),
        ] {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, text);
            let back: Value = Parser::new(&out).parse_value().unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_roundtrip() {
        for f in [0.0, 1.5, -2.25, 1e300, 0.1, 70.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn nested_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("b".into(), Value::Object(vec![("c".into(), Value::Null)])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut compact = String::new();
        write_value(&v, &mut compact, None, 0);
        assert_eq!(compact, r#"{"a":[1,2],"b":{"c":null},"empty":[]}"#);
        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0);
        let reparsed: Value = Parser::new(&pretty).parse_value().unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }
}
