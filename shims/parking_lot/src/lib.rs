//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny slice of `parking_lot`'s API it actually uses: [`Mutex`] and
//! [`RwLock`] with panic-free, non-poisoning guard acquisition. Backed by
//! `std::sync` primitives; a poisoned lock is recovered transparently
//! (matching `parking_lot`'s no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert!(l.try_read().is_some());
    }
}
