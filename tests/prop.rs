//! Workspace-level property test: on arbitrary datasets and query streams,
//! GraphCache's answers are bit-for-bit those of the uncached method — the
//! paper's no-false-positives/no-false-negatives guarantee.

use graphcache::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_graph(max_n: usize, max_label: u32) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..=max_label, n);
        let edges = if n >= 2 {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(2 * n)).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_never_changes_answers(
        dataset_graphs in proptest::collection::vec(arb_graph(8, 2), 3..10),
        queries in proptest::collection::vec((arb_graph(5, 2), any::<bool>()), 1..25),
        capacity in 1usize..6,
        window in 1usize..4,
        policy_idx in 0usize..5,
    ) {
        let dataset = Arc::new(Dataset::new(dataset_graphs));
        let policy = PolicyKind::all()[policy_idx];
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            CacheConfig {
                capacity,
                window_size: window,
                min_admit_tests: 0,
                ..CacheConfig::default()
            },
        ).unwrap();
        for (q, is_super) in &queries {
            let kind = if *is_super { QueryKind::Supergraph } else { QueryKind::Subgraph };
            let got = gc.query(q, kind);
            let want = execute_base(&dataset, &SiMethod, Engine::Vf2, q, kind);
            prop_assert_eq!(
                got.answer.to_vec(),
                want.answer.to_vec(),
                "policy {} kind {:?}",
                policy,
                kind
            );
        }
    }

    #[test]
    fn shared_cache_matches_sequential_replay(
        dataset_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        policy_idx in 0usize..5,
        shards in 1usize..6,
        skew_tenths in 5usize..18,
    ) {
        // The tentpole invariant: `SharedGraphCache` queried from N threads
        // returns, for every workload item, the exact answer set the
        // sequential `GraphCache` replay produces — for each PolicyKind.
        const THREADS: usize = 8;
        let policy = PolicyKind::all()[policy_idx];
        let dataset = Arc::new(Dataset::new(molecule_dataset(10, dataset_seed)));
        let spec = WorkloadSpec {
            n_queries: 48,
            pool_size: 12,
            kind: WorkloadKind::Zipf { skew: skew_tenths as f64 / 10.0 },
            seed: workload_seed,
            min_edges: 2,
            max_edges: 8,
            supergraph_fraction: 0.25,
        };
        let workload = Workload::generate(dataset.graphs(), &spec);
        let config = CacheConfig {
            capacity: 8,
            window_size: 2,
            shards,
            min_admit_tests: 0,
            ..CacheConfig::default()
        };

        let mut seq = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            config.clone(),
        ).unwrap();
        let expected: Vec<BitSet> = workload
            .queries
            .iter()
            .map(|wq| seq.query(&wq.graph, wq.kind).answer)
            .collect();

        let shared = SharedGraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            config,
        ).unwrap();
        let mismatches: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let shared = &shared;
                    let workload = &workload;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut bad = 0usize;
                        for (i, wq) in workload.queries.iter().enumerate() {
                            if i % THREADS != t {
                                continue;
                            }
                            if shared.query(&wq.graph, wq.kind).answer != expected[i] {
                                bad += 1;
                            }
                        }
                        bad
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
        });
        prop_assert_eq!(mismatches, 0, "policy {} shards {}", policy, shards);
        prop_assert_eq!(shared.stats().queries as usize, workload.len());
    }

    #[test]
    fn parallel_probe_matches_sequential_walk(
        dataset_seed in any::<u64>(),
        workload_seed in any::<u64>(),
        policy_idx in 0usize..5,
        shards in 2usize..6,
        skew_tenths in 5usize..18,
    ) {
        // With `threads > 1` and multiple shards, probes fan out per shard
        // onto the worker pool; the merged answers must still be exactly
        // the sequential `GraphCache` replay's, under concurrent clients
        // contending for the same pool.
        const THREADS: usize = 4;
        let policy = PolicyKind::all()[policy_idx];
        let dataset = Arc::new(Dataset::new(molecule_dataset(10, dataset_seed)));
        let spec = WorkloadSpec {
            n_queries: 32,
            pool_size: 12,
            kind: WorkloadKind::Zipf { skew: skew_tenths as f64 / 10.0 },
            seed: workload_seed,
            min_edges: 2,
            max_edges: 8,
            supergraph_fraction: 0.25,
        };
        let workload = Workload::generate(dataset.graphs(), &spec);
        let config = CacheConfig {
            capacity: 8,
            window_size: 2,
            shards,
            threads: 4,
            min_admit_tests: 0,
            ..CacheConfig::default()
        };

        let mut seq = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            CacheConfig { threads: 1, ..config.clone() },
        ).unwrap();
        let expected: Vec<BitSet> = workload
            .queries
            .iter()
            .map(|wq| seq.query(&wq.graph, wq.kind).answer)
            .collect();

        let shared = SharedGraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            config,
        ).unwrap();
        let mismatches: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let shared = &shared;
                    let workload = &workload;
                    let expected = &expected;
                    scope.spawn(move || {
                        let mut bad = 0usize;
                        for (i, wq) in workload.queries.iter().enumerate() {
                            if i % THREADS != t {
                                continue;
                            }
                            if shared.query(&wq.graph, wq.kind).answer != expected[i] {
                                bad += 1;
                            }
                        }
                        bad
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
        });
        prop_assert_eq!(mismatches, 0, "policy {} shards {}", policy, shards);
        prop_assert_eq!(shared.stats().queries as usize, workload.len());
    }

    #[test]
    fn ftv_cache_matches_si_cache(
        dataset_graphs in proptest::collection::vec(arb_graph(7, 2), 3..8),
        queries in proptest::collection::vec(arb_graph(4, 2), 1..15),
    ) {
        // Two caches over different Methods M must agree with each other.
        let dataset = Arc::new(Dataset::new(dataset_graphs));
        let mut gc_si = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig { capacity: 4, window_size: 2, min_admit_tests: 0, ..CacheConfig::default() },
        ).unwrap();
        let mut gc_ftv = GraphCache::with_policy(
            dataset.clone(),
            Box::new(FtvMethod::build(&dataset, 2)),
            PolicyKind::Lru,
            CacheConfig { capacity: 4, window_size: 2, min_admit_tests: 0, ..CacheConfig::default() },
        ).unwrap();
        for q in &queries {
            let a = gc_si.query(q, QueryKind::Subgraph);
            let b = gc_ftv.query(q, QueryKind::Subgraph);
            prop_assert_eq!(a.answer.to_vec(), b.answer.to_vec());
            // FTV filters at least as hard as SI.
            prop_assert!(b.cm_size <= a.cm_size || a.exact_hit || b.exact_hit);
        }
    }
}
