//! Workspace-level integration tests exercising the public facade the way a
//! downstream application would.

use graphcache::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

fn molecule_cache(n_graphs: usize, seed: u64, capacity: usize) -> (Arc<Dataset>, GraphCache) {
    let dataset = Arc::new(Dataset::new(molecule_dataset(n_graphs, seed)));
    let gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(&dataset, 2)),
        PolicyKind::Hd,
        CacheConfig { capacity, window_size: 5, ..CacheConfig::default() },
    )
    .expect("valid config");
    (dataset, gc)
}

#[test]
fn cached_answers_match_base_method_end_to_end() {
    let (dataset, mut gc) = molecule_cache(40, 1001, 15);
    let reference = FtvMethod::build(&dataset, 2);
    let spec = WorkloadSpec {
        n_queries: 80,
        pool_size: 25,
        kind: WorkloadKind::Drift { chain_len: 3, repeat_prob: 0.3 },
        seed: 3,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    for wq in &workload.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&dataset, &reference, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer);
    }
    assert!(gc.stats().hit_queries > 0);
}

#[test]
fn pipeline_invariants_hold_on_every_query() {
    let (dataset, mut gc) = molecule_cache(30, 2002, 12);
    let spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 20,
        kind: WorkloadKind::Zipf { skew: 1.0 },
        seed: 9,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    for wq in &workload.queries {
        let r = gc.query(&wq.graph, wq.kind);
        if r.exact_hit || r.memo_hit {
            // Served whole from the fingerprint table / answer memo: the
            // staged pipeline (whose algebra this checks) never ran.
            continue;
        }
        // Fig. 3 pipeline algebra.
        assert!(r.verified_set.is_subset(&r.cm_set), "C ⊆ C_M");
        assert!(r.definite_set.is_disjoint(&r.verified_set), "S ∩ C = ∅");
        assert!(r.survivors_set.is_subset(&r.verified_set), "R ⊆ C");
        let mut a = r.survivors_set.clone();
        a.union_with(&r.definite_set);
        assert_eq!(a, r.answer, "A = R ∪ S");
        assert!(r.answer.is_subset(&r.cm_set), "A ⊆ C_M (sound filter)");
        assert_eq!(r.verified as u64, r.sub_iso_tests);
    }
}

#[test]
fn resubmission_is_an_exact_hit_with_zero_tests() {
    let (dataset, mut gc) = molecule_cache(25, 3003, 20);
    let mut rng = StdRng::seed_from_u64(5);
    let q = extract_query(dataset.graph(3), 7, &mut rng).unwrap();
    let first = gc.query(&q, QueryKind::Subgraph);
    assert!(!first.exact_hit);
    let second = gc.query(&q, QueryKind::Subgraph);
    assert!(second.exact_hit);
    assert_eq!(second.sub_iso_tests, 0);
    assert_eq!(second.probe_tests, 0);
    assert_eq!(first.answer, second.answer);
}

#[test]
fn chain_queries_generate_sub_and_super_hits() {
    let (dataset, mut gc) = molecule_cache(30, 4004, 30);
    let mut rng = StdRng::seed_from_u64(6);
    let chain = nested_chain(dataset.graph(2), &[3, 6, 9, 13], &mut rng);
    assert_eq!(chain.len(), 4);
    // Execute ends first, middles after: middles see hits both ways.
    gc.query(&chain[0], QueryKind::Subgraph);
    gc.query(&chain[3], QueryKind::Subgraph);
    let r1 = gc.query(&chain[1], QueryKind::Subgraph);
    assert!(
        !r1.sub_hits.is_empty() || !r1.super_hits.is_empty(),
        "chain middle must hit at least one end"
    );
    let r2 = gc.query(&chain[2], QueryKind::Subgraph);
    assert!(r2.any_hit());
}

#[test]
fn supergraph_and_subgraph_entries_do_not_mix() {
    let (dataset, mut gc) = molecule_cache(20, 5005, 20);
    let mut rng = StdRng::seed_from_u64(7);
    let q = extract_query(dataset.graph(0), 6, &mut rng).unwrap();
    let sub = gc.query(&q, QueryKind::Subgraph);
    // The same graph as a supergraph query: different semantics, must NOT
    // be served from the subgraph entry.
    let sup = gc.query(&q, QueryKind::Supergraph);
    assert!(!sup.exact_hit, "kinds must not cross-serve");
    // Answers are generally different: sub finds containers, super finds
    // contained graphs.
    let reference = FtvMethod::build(&dataset, 2);
    let want = execute_base(&dataset, &reference, Engine::Vf2, &q, QueryKind::Supergraph);
    assert_eq!(sup.answer, want.answer);
    let want_sub = execute_base(&dataset, &reference, Engine::Vf2, &q, QueryKind::Subgraph);
    assert_eq!(sub.answer, want_sub.answer);
}

#[test]
fn graph_io_roundtrips_through_the_cache() {
    // Serialize a dataset, reload it, and check cache answers agree.
    let graphs = molecule_dataset(10, 6006);
    let text = graphcache::graph::io::dataset_to_string(&graphs);
    let reloaded = graphcache::graph::io::parse_dataset(&text).unwrap();
    assert_eq!(graphs, reloaded);

    let d1 = Arc::new(Dataset::new(graphs));
    let d2 = Arc::new(Dataset::new(reloaded));
    let mut rng = StdRng::seed_from_u64(8);
    let q = extract_query(d1.graph(4), 5, &mut rng).unwrap();
    let mut gc1 = GraphCache::with_policy(
        d1.clone(),
        Box::new(SiMethod),
        PolicyKind::Lru,
        CacheConfig::default(),
    )
    .unwrap();
    let mut gc2 = GraphCache::with_policy(
        d2.clone(),
        Box::new(SiMethod),
        PolicyKind::Lru,
        CacheConfig::default(),
    )
    .unwrap();
    assert_eq!(
        gc1.query(&q, QueryKind::Subgraph).answer,
        gc2.query(&q, QueryKind::Subgraph).answer
    );
}

#[test]
fn custom_policy_via_public_trait() {
    /// Evict-newest policy (pathological on purpose).
    struct EvictNewest {
        order: Vec<EntryId>,
    }
    impl ReplacementPolicy for EvictNewest {
        fn name(&self) -> &'static str {
            "evict-newest"
        }
        fn on_insert(&mut self, e: EntryId, _now: u64) {
            self.order.push(e);
        }
        fn on_hit(&mut self, _e: EntryId, _c: &HitCredit, _now: u64) {}
        fn on_evict(&mut self, e: EntryId) {
            self.order.retain(|&x| x != e);
        }
        fn victims(&mut self, x: usize) -> Vec<EntryId> {
            self.order.iter().rev().take(x).copied().collect()
        }
    }

    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 7007)));
    let mut gc = GraphCache::new(
        dataset.clone(),
        Box::new(SiMethod),
        Box::new(EvictNewest { order: Vec::new() }),
        CacheConfig { capacity: 5, window_size: 2, ..CacheConfig::default() },
    )
    .unwrap();
    assert_eq!(gc.policy_name(), "evict-newest");
    let spec = WorkloadSpec {
        n_queries: 40,
        pool_size: 40,
        kind: WorkloadKind::Uniform,
        seed: 12,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let reference = SiMethod;
    for wq in &workload.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&dataset, &reference, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer, "custom policy must not affect answers");
    }
    assert!(gc.stats().evicted > 0);
    assert!(gc.len() <= 5 + 2);
}

#[test]
fn skewed_workload_yields_speedup() {
    let (dataset, mut gc) = molecule_cache(60, 8008, 40);
    let reference = FtvMethod::build(&dataset, 2);
    let spec = WorkloadSpec {
        n_queries: 200,
        pool_size: 50,
        kind: WorkloadKind::Zipf { skew: 1.3 },
        seed: 21,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut base_tests = 0u64;
    for wq in &workload.queries {
        base_tests += execute_base(&dataset, &reference, Engine::Vf2, &wq.graph, wq.kind)
            .sub_iso_tests as u64;
        gc.query(&wq.graph, wq.kind);
    }
    let stats = gc.stats();
    let base_avg = base_tests as f64 / workload.len() as f64;
    let speedup = base_avg / stats.avg_tests_per_query();
    assert!(
        speedup > 1.5,
        "a skewed workload must show clear sub-iso-test speedup, got {speedup:.2}"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let (dataset, mut gc) = molecule_cache(30, 9009, 10);
    let spec = WorkloadSpec {
        n_queries: 50,
        pool_size: 20,
        kind: WorkloadKind::Zipf { skew: 1.0 },
        seed: 2,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut any_hits = 0u64;
    let mut tests = 0u64;
    for wq in &workload.queries {
        let r = gc.query(&wq.graph, wq.kind);
        any_hits += u64::from(r.any_hit());
        tests += r.sub_iso_tests;
    }
    let s = gc.stats();
    assert_eq!(s.queries, 50);
    assert_eq!(s.hit_queries, any_hits);
    assert_eq!(s.tests_executed, tests);
    assert!(s.admitted >= s.evicted);
    assert_eq!(gc.len() as u64, s.admitted - s.evicted);
}
